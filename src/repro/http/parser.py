"""Incremental HTTP message parser.

Feed it raw TCP bytes; it yields complete messages.  Both the backend
servers (requests) and clients (responses) use it, and so does YODA's
connection phase -- the instance must recognize when it has the *complete*
HTTP request header before it can run rule matching (Section 4.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.errors import HttpParseError
from repro.http.message import (
    CRLF,
    Headers,
    HttpRequest,
    HttpResponse,
    parse_request_line,
    parse_status_line,
)

HEADER_END = b"\r\n\r\n"


@dataclass
class ParsedMessage:
    """A complete request or response plus how many wire bytes it consumed."""

    message: object  # HttpRequest | HttpResponse
    wire_bytes: int


class HttpParser:
    """Parses a byte stream into HTTP messages.

    Args:
        kind: "request" or "response".
    """

    def __init__(self, kind: str):
        if kind not in ("request", "response"):
            raise ValueError(f"kind must be 'request' or 'response', got {kind!r}")
        self.kind = kind
        self._buf = bytearray()
        self._headers_done = False
        self._start_line: bytes = b""
        self._headers: Optional[Headers] = None
        self._body_needed = 0
        self._header_bytes = 0
        self._close_delimited = False

    @property
    def buffered(self) -> int:
        return len(self._buf)

    def feed(self, data: bytes) -> List[ParsedMessage]:
        """Add bytes; return any messages completed by them."""
        self._buf.extend(data)
        out: List[ParsedMessage] = []
        while True:
            msg = self._try_parse_one()
            if msg is None:
                break
            out.append(msg)
        return out

    def finish(self) -> Optional[ParsedMessage]:
        """Signal EOF (peer closed).  Completes a close-delimited response."""
        if self._headers_done and self._close_delimited:
            body = bytes(self._buf)
            self._buf.clear()
            msg = self._build(body)
            wire = self._header_bytes + len(body)
            self._reset()
            return ParsedMessage(msg, wire)
        if self._buf and not self._headers_done:
            raise HttpParseError("connection closed mid-header")
        return None

    def header_complete(self) -> bool:
        """True once the current message's header block has fully arrived.

        YODA's connection phase polls this to know when server selection
        can run.
        """
        return self._headers_done or HEADER_END in self._buf

    def _try_parse_one(self) -> Optional[ParsedMessage]:
        if not self._headers_done:
            idx = self._buf.find(HEADER_END)
            if idx < 0:
                return None
            block = bytes(self._buf[:idx])
            del self._buf[: idx + len(HEADER_END)]
            self._header_bytes = idx + len(HEADER_END)
            lines = block.split(CRLF)
            self._start_line = lines[0]
            headers = Headers()
            for line in lines[1:]:
                if not line:
                    continue
                name, sep, value = line.decode("latin-1").partition(":")
                if not sep:
                    raise HttpParseError(f"malformed header line {line!r}")
                headers.set(name.strip(), value.strip())
            self._headers = headers
            self._headers_done = True
            length = headers.get("Content-Length")
            if length is not None:
                try:
                    self._body_needed = int(length)
                except ValueError as exc:
                    raise HttpParseError(f"bad Content-Length {length!r}") from exc
                self._close_delimited = False
            else:
                self._body_needed = 0
                # responses without Content-Length run to connection close
                self._close_delimited = self.kind == "response"
        if self._close_delimited:
            return None  # completed only by finish()
        if len(self._buf) < self._body_needed:
            return None
        body = bytes(self._buf[: self._body_needed])
        del self._buf[: self._body_needed]
        msg = self._build(body)
        wire = self._header_bytes + len(body)
        self._reset()
        return ParsedMessage(msg, wire)

    def _build(self, body: bytes):
        assert self._headers is not None
        if self.kind == "request":
            method, path, version = parse_request_line(self._start_line)
            req = HttpRequest(method=method, path=path, version=version, body=body)
            req.headers = self._headers
            return req
        version, status, reason = parse_status_line(self._start_line)
        resp = HttpResponse(status=status, version=version, reason=reason, body=body)
        # preserve original headers (constructor overwrote Content-Length)
        content_length = str(len(body))
        resp.headers = self._headers
        if "Content-Length" not in resp.headers:
            resp.headers.set("Content-Length", content_length)
        return resp

    def _reset(self) -> None:
        self._headers_done = False
        self._start_line = b""
        self._headers = None
        self._body_needed = 0
        self._header_bytes = 0
        self._close_delimited = False
