"""HTTP clients: single fetches and a browser emulator.

The failure experiments hinge on client behaviour, so it is modeled the way
the paper describes its Python clients (Section 7.2): an HTTP timeout
(30 s default, "the least among the popular web browsers"), an optional
single retry on a *fresh* connection, and pages fetched as an HTML document
followed by its embedded objects.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.errors import HttpError
from repro.http import tls
from repro.http.message import HttpRequest, HttpResponse
from repro.http.parser import HttpParser
from repro.net.addresses import Endpoint
from repro.obs import OBS
from repro.sim.events import EventLoop
from repro.sim.process import Timer
from repro.tcp.endpoint import ConnectionHandler, TcpConnection, TcpStack

DEFAULT_HTTP_TIMEOUT = 30.0


@dataclass
class FetchResult:
    """Outcome of one HTTP request (after any retries)."""

    path: str
    ok: bool
    status: Optional[int] = None
    error: Optional[str] = None  # "timeout" | "reset" | "tcp-timeout" | ...
    started_at: float = 0.0
    finished_at: float = 0.0
    retries_used: int = 0
    response: Optional[HttpResponse] = None
    first_attempt_failed: bool = False
    resumed: bool = False  # HTTPS only: completed via an abbreviated handshake

    @property
    def latency(self) -> float:
        return self.finished_at - self.started_at


class HttpFetcher(ConnectionHandler):
    """Fetch one request over one fresh connection, with timeout + retries.

    A retry always opens a new connection (new ephemeral port, so a new
    5-tuple) -- this is the paper's HAProxy-retry scenario: the L4 LB sees
    a brand-new flow and routes it to a live instance.
    """

    def __init__(
        self,
        stack: TcpStack,
        loop: EventLoop,
        target: Endpoint,
        request: HttpRequest,
        on_done: Callable[[FetchResult], None],
        http_timeout: float = DEFAULT_HTTP_TIMEOUT,
        retries: int = 0,
        stall_timeout: Optional[float] = None,
    ):
        self.stack = stack
        self.loop = loop
        self.target = target
        self.request = request
        self.on_done = on_done
        self.http_timeout = http_timeout
        self.stall_timeout = stall_timeout
        self.retries = retries
        self.result = FetchResult(path=request.path, ok=False, started_at=loop.now())
        self._parser = HttpParser("response")
        self._timer = Timer(loop, self._on_http_timeout)
        self._conn: Optional[TcpConnection] = None
        self._finished = False
        self._span = None  # root trace span (observability plane)
        self._obs_ctx = None

    def start(self) -> "HttpFetcher":
        self._parser = HttpParser("response")
        self._timer.start(self.stall_timeout or self.http_timeout)
        if OBS.enabled:
            if self._span is None:
                # root of the request's trace; retries continue the same
                # span, mirroring FetchResult's started_at/finished_at
                self._span = OBS.tracer.start(
                    "http.request", self.stack.host.name,
                    start=self.result.started_at,
                    attrs={"path": self.request.path},
                )
            self._obs_ctx = OBS.tracer.ctx_of(self._span)
        self._conn = self.stack.connect(self.target, self, obs_ctx=self._obs_ctx)
        return self

    # -- TCP callbacks -----------------------------------------------------
    def on_connected(self, conn: TcpConnection) -> None:
        conn.send(self.request.serialize())

    def on_data(self, conn: TcpConnection, data: bytes) -> None:
        if self.stall_timeout is not None and not self._finished:
            # a streaming client's patience is per-stall, not per-transfer
            self._timer.start(self.stall_timeout)
        try:
            parsed = self._parser.feed(data)
        except HttpError:
            self._attempt_failed("bad-response")
            return
        if parsed:
            self._complete(parsed[0].message)

    def on_remote_close(self, conn: TcpConnection) -> None:
        if self._finished:
            return
        final = self._parser.finish()
        if final is not None:
            self._complete(final.message)
            return
        conn.close()
        self._attempt_failed("closed-early")

    def on_error(self, conn: TcpConnection, reason: str) -> None:
        if not self._finished:
            self._attempt_failed("reset" if reason == "reset" else "tcp-timeout")

    # -- internals ----------------------------------------------------------
    def _on_http_timeout(self) -> None:
        if self._conn is not None:
            # silently abandon the socket, as a browser does
            self._conn.handler = ConnectionHandler()
            self._conn.abort("http-timeout")
        self._attempt_failed("timeout")

    def _attempt_failed(self, error: str) -> None:
        if self._finished:
            return
        self._timer.cancel()
        self.result.first_attempt_failed = True
        if self.result.retries_used < self.retries:
            self.result.retries_used += 1
            self.start()  # fresh connection, fresh parser, fresh timer
            return
        self._finished = True
        self.result.error = error
        self.result.finished_at = self.loop.now()
        if OBS.enabled and self._span is not None:
            OBS.tracer.end(self._span, end=self.result.finished_at,
                           ok=False, error=error,
                           retries=self.result.retries_used)
        self.on_done(self.result)

    def _complete(self, response: HttpResponse) -> None:
        if self._finished:
            return
        self._finished = True
        self._timer.cancel()
        if self._conn is not None and self._conn.state.can_send:
            self._conn.close()
        self.result.ok = response.ok
        self.result.status = response.status
        self.result.response = response
        self.result.finished_at = self.loop.now()
        if not response.ok:
            self.result.error = f"http-{response.status}"
        if OBS.enabled and self._span is not None:
            OBS.tracer.end(self._span, end=self.result.finished_at,
                           ok=response.ok, status=response.status,
                           retries=self.result.retries_used)
        self.on_done(self.result)


@dataclass
class PageLoadResult:
    """Outcome of loading a page (HTML + embedded objects)."""

    page: str
    started_at: float
    finished_at: float = 0.0
    object_results: List[FetchResult] = field(default_factory=list)
    broken: bool = False  # at least one object ultimately failed

    @property
    def load_time(self) -> float:
        return self.finished_at - self.started_at

    @property
    def retried(self) -> bool:
        return any(r.retries_used for r in self.object_results)


class BrowserClient:
    """Emulates the paper's browser client: fetch the HTML page, then each
    embedded object, sequentially, each on its own connection."""

    def __init__(
        self,
        stack: TcpStack,
        loop: EventLoop,
        target: Endpoint,
        http_timeout: float = DEFAULT_HTTP_TIMEOUT,
        retries: int = 0,
        host_header: str = "",
        stall_timeout: Optional[float] = None,
    ):
        self.stack = stack
        self.loop = loop
        self.target = target
        self.http_timeout = http_timeout
        self.stall_timeout = stall_timeout
        self.retries = retries
        self.host_header = host_header

    def load_page(
        self,
        html_path: str,
        object_paths: List[str],
        on_done: Callable[[PageLoadResult], None],
    ) -> None:
        result = PageLoadResult(page=html_path, started_at=self.loop.now())
        remaining = [html_path] + list(object_paths)

        def fetch_next() -> None:
            if not remaining:
                result.finished_at = self.loop.now()
                on_done(result)
                return
            path = remaining.pop(0)
            self.fetch(path, _one_done)

        def _one_done(fetch_result: FetchResult) -> None:
            result.object_results.append(fetch_result)
            if not fetch_result.ok:
                result.broken = True
            fetch_next()

        fetch_next()

    def fetch(self, path: str, on_done: Callable[[FetchResult], None]) -> HttpFetcher:
        request = HttpRequest(
            "GET", path, version="HTTP/1.0", host=self.host_header or self.target.ip
        )
        fetcher = HttpFetcher(
            self.stack,
            self.loop,
            self.target,
            request,
            on_done,
            http_timeout=self.http_timeout,
            retries=self.retries,
            stall_timeout=self.stall_timeout,
        )
        return fetcher.start()


class HttpsFetcher(HttpFetcher):
    """HTTPS: a TLS handshake precedes the request (paper Section 5.2).

    The client sends a ClientHello, waits for the certificate flight,
    then sends its key exchange + the request as APP_DATA records.  If
    the certificate stalls (the serving instance died mid-transfer), the
    client nudges with RETRY_PING records; whichever instance receives
    the nudge recovers the flow from TCPStore and "resends the entire
    certificate (TCP ... will remove duplicate packets)" -- the paper's
    exact failover story for SSL.
    """

    HANDSHAKE_RETRY = 1.0
    MAX_HANDSHAKE_RETRIES = 20

    def __init__(self, *args, sni: str = "",
                 session_cache: Optional[Dict[str, str]] = None, **kwargs):
        super().__init__(*args, **kwargs)
        self.sni = sni or str(self.target.ip)
        # sni -> session ticket; share one dict across fetchers to model a
        # browser's session cache (resumption skips the certificate flight)
        self.session_cache = session_cache
        self._codec = tls.TlsCodec()
        self._tls_established = False
        self._resuming = False
        self._handshake_timer = Timer(self.loop, self._handshake_stalled)
        self._handshake_retries = 0

    def start(self) -> "HttpsFetcher":
        self._codec = tls.TlsCodec()
        self._tls_established = False
        self._resuming = (self.session_cache is not None
                          and self.sni in self.session_cache)
        self._handshake_retries = 0
        return super().start()

    # -- TCP callbacks --------------------------------------------------
    def on_connected(self, conn: TcpConnection) -> None:
        ticket = self.session_cache[self.sni] if self._resuming else None
        conn.send(tls.client_hello(self.sni, ticket=ticket))
        self._handshake_timer.start(self.HANDSHAKE_RETRY)

    def _handshake_done(self, conn: TcpConnection) -> None:
        self._tls_established = True
        self._handshake_timer.cancel()
        conn.send(tls.key_exchange(self.sni))
        conn.send(tls.app_data(self.request.serialize()))

    def on_data(self, conn: TcpConnection, data: bytes) -> None:
        if self.stall_timeout is not None and not self._finished:
            self._timer.start(self.stall_timeout)
        try:
            records = self._codec.feed(data)
        except HttpError:
            self._handshake_timer.cancel()
            self._attempt_failed("bad-tls-record")
            return
        for rtype, payload in records:
            if rtype == tls.CERTIFICATE and not self._tls_established:
                self._handshake_done(conn)
            elif rtype == tls.SESSION_TICKET:
                if not self._tls_established and self._resuming:
                    # abbreviated handshake accepted: no certificate flight
                    self.result.resumed = True
                    self._handshake_done(conn)
                elif self.session_cache is not None:
                    # ticket issued after a full handshake: cache it
                    self.session_cache[self.sni] = payload.decode()
            elif rtype == tls.APP_DATA:
                try:
                    parsed = self._parser.feed(payload)
                except HttpError:
                    self._attempt_failed("bad-response")
                    return
                if parsed:
                    self._complete(parsed[0].message)

    def _handshake_stalled(self) -> None:
        """No certificate yet: nudge so a surviving instance recovers us."""
        if self._finished or self._tls_established:
            return
        self._handshake_retries += 1
        if self._handshake_retries > self.MAX_HANDSHAKE_RETRIES:
            self._attempt_failed("tls-handshake-timeout")
            return
        if self._conn is not None and self._conn.state.can_send:
            self._conn.send(tls.retry_ping())
        self._handshake_timer.start(self.HANDSHAKE_RETRY)

    def _attempt_failed(self, error: str) -> None:
        self._handshake_timer.cancel()
        if self._resuming and not self._tls_established:
            # the ticket was rejected (e.g. not in the flow store); forget
            # it so the retry -- a fresh connection -- does a full handshake
            if self.session_cache is not None:
                self.session_cache.pop(self.sni, None)
            self._resuming = False
        super()._attempt_failed(error)

    def _complete(self, response: HttpResponse) -> None:
        self._handshake_timer.cancel()
        super()._complete(response)
