"""A lightweight TLS model for SSL termination (paper Section 5.2).

Real TLS is out of scope; what the paper's SSL support *mechanically*
requires is modeled exactly:

- a per-VIP **certificate** several packets long, served by the YODA
  instance during a handshake that precedes the HTTP bytes;
- the instance must **decrypt the request header** to run rule matching;
- on an instance failure during certificate transfer, "another YODA
  instance resends the entire certificate (TCP buffer at the client will
  remove duplicate packets)".

The wire format is a record layer: a 6-byte header (type, u32 length)
followed by the payload.  The server side of the handshake is
*deterministic* given the certificate, which is what lets any YODA
instance (or the backend, when the buffered handshake is replayed to it)
produce byte-identical records -- the same property the hashed SYN-ACK
ISN provides for TCP.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.errors import HttpError
from repro.sim.random import stable_hash64

# record types
CLIENT_HELLO = 0x01
CERTIFICATE = 0x02
KEY_EXCHANGE = 0x03
APP_DATA = 0x04
RETRY_PING = 0x05  # client nudge when a handshake stalls (triggers recovery)
SESSION_TICKET = 0x06  # resumption ticket (issued after KEY_EXCHANGE)

_HEADER = struct.Struct("!BIx")  # type, length, pad -> 6 bytes


@dataclass(frozen=True)
class Certificate:
    """A synthesized certificate: deterministic bytes of realistic size."""

    common_name: str
    size: int = 3_000

    @property
    def pem(self) -> bytes:
        head = f"-----BEGIN CERT {self.common_name}-----".encode()
        seed = stable_hash64(self.common_name, salt="cert")
        body = bytes((seed >> (8 * (i % 8))) & 0xFF for i in range(
            max(0, self.size - len(head) - 20)
        ))
        return head + body + b"-----END CERT-----"


def encode_record(rtype: int, payload: bytes) -> bytes:
    return _HEADER.pack(rtype, len(payload)) + payload


def client_hello(sni: str, ticket: Optional[str] = None) -> bytes:
    """A hello, optionally carrying a resumption ticket.

    The ticket rides inside the hello payload so a resuming handshake is
    still a single record -- the instance decides full vs. abbreviated
    before any response byte is committed.
    """
    payload = sni if ticket is None else f"{sni}|tkt={ticket}"
    return encode_record(CLIENT_HELLO, payload.encode())


def parse_hello(payload: bytes) -> Tuple[str, Optional[str]]:
    """Split a CLIENT_HELLO payload into (sni, ticket-or-None)."""
    text = payload.decode()
    if "|tkt=" in text:
        sni, _, ticket = text.partition("|tkt=")
        return sni, ticket
    return text, None


def ticket_for(sni: str) -> str:
    """The deterministic session ticket for a service.

    Determinism matters for the same reason the hashed SYN-ACK ISN does:
    the instance's handshake flight and the backend's replayed duplicate
    of it must be byte-identical, so both must mint the *same* ticket
    without coordinating.
    """
    return f"{stable_hash64(f'ticket:{sni}', salt='tls-ticket'):016x}"


def session_ticket(ticket: str) -> bytes:
    return encode_record(SESSION_TICKET, ticket.encode())


def key_exchange(sni: str) -> bytes:
    # deterministic "pre-master secret" so every party derives the same
    # session key without extra round trips
    secret = stable_hash64(f"kx:{sni}", salt="tls").to_bytes(8, "big")
    return encode_record(KEY_EXCHANGE, secret)


def certificate_flight(cert: Certificate) -> bytes:
    """The server's full handshake response (the multi-packet transfer the
    paper's failure-during-certificate case is about)."""
    return encode_record(CERTIFICATE, cert.pem)


def app_data(plaintext: bytes) -> bytes:
    """'Encrypt' application bytes into a record.

    The payload is kept readable -- the model's point is framing and byte
    accounting, not cryptography -- but only parties that completed the
    handshake treat APP_DATA records as application bytes.
    """
    return encode_record(APP_DATA, plaintext)


def retry_ping() -> bytes:
    return encode_record(RETRY_PING, b"")


class TlsCodec:
    """Incremental record parser: feed stream bytes, get (type, payload)."""

    def __init__(self) -> None:
        self._buf = bytearray()

    @property
    def buffered(self) -> int:
        return len(self._buf)

    def feed(self, data: bytes) -> List[Tuple[int, bytes]]:
        self._buf.extend(data)
        out: List[Tuple[int, bytes]] = []
        while len(self._buf) >= _HEADER.size:
            rtype, length = _HEADER.unpack_from(self._buf)
            if rtype not in (CLIENT_HELLO, CERTIFICATE, KEY_EXCHANGE,
                             APP_DATA, RETRY_PING, SESSION_TICKET):
                raise HttpError(f"bad TLS record type 0x{rtype:02x}")
            total = _HEADER.size + length
            if len(self._buf) < total:
                break
            payload = bytes(self._buf[_HEADER.size:total])
            del self._buf[:total]
            out.append((rtype, payload))
        return out
