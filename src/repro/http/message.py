"""HTTP request/response objects with wire serialization."""

from __future__ import annotations

from typing import Dict, Iterator, Mapping, Optional, Tuple

from repro.errors import HttpError

CRLF = b"\r\n"


class Headers:
    """Case-insensitive HTTP header map preserving insertion order."""

    def __init__(self, items: Optional[Mapping[str, str]] = None):
        self._items: Dict[str, Tuple[str, str]] = {}
        if items:
            for name, value in items.items():
                self.set(name, value)

    def set(self, name: str, value: str) -> None:
        self._items[name.lower()] = (name, str(value))

    def get(self, name: str, default: Optional[str] = None) -> Optional[str]:
        entry = self._items.get(name.lower())
        return entry[1] if entry else default

    def __contains__(self, name: str) -> bool:
        return name.lower() in self._items

    def __iter__(self) -> Iterator[Tuple[str, str]]:
        return iter(self._items.values())

    def __len__(self) -> int:
        return len(self._items)

    def copy(self) -> "Headers":
        out = Headers()
        out._items = dict(self._items)
        return out

    def serialize(self) -> bytes:
        return b"".join(
            f"{name}: {value}".encode() + CRLF for name, value in self._items.values()
        )

    def __repr__(self) -> str:
        return f"Headers({dict(self._items.values())!r})"


class HttpRequest:
    """An HTTP request.

    The fields YODA's rule engine matches on (Section 5.1) are all here:
    the URL (path), arbitrary headers, and cookies.
    """

    def __init__(
        self,
        method: str = "GET",
        path: str = "/",
        version: str = "HTTP/1.1",
        headers: Optional[Mapping[str, str]] = None,
        body: bytes = b"",
        host: str = "",
    ):
        self.method = method.upper()
        self.path = path
        self.version = version
        self.headers = headers if isinstance(headers, Headers) else Headers(headers)
        self.body = body
        if host and "Host" not in self.headers:
            self.headers.set("Host", host)
        if body and "Content-Length" not in self.headers:
            self.headers.set("Content-Length", str(len(body)))

    @property
    def host(self) -> str:
        return self.headers.get("Host", "")

    @property
    def url(self) -> str:
        """host + path, the form rule matches are written against."""
        return f"{self.host}{self.path}"

    def cookie(self, name: str) -> Optional[str]:
        """Value of a cookie from the Cookie header, or None."""
        raw = self.headers.get("Cookie")
        if not raw:
            return None
        for part in raw.split(";"):
            key, _, value = part.strip().partition("=")
            if key == name:
                return value
        return None

    @property
    def cookies(self) -> Dict[str, str]:
        raw = self.headers.get("Cookie")
        if not raw:
            return {}
        out = {}
        for part in raw.split(";"):
            key, _, value = part.strip().partition("=")
            if key:
                out[key] = value
        return out

    def serialize(self) -> bytes:
        start = f"{self.method} {self.path} {self.version}".encode() + CRLF
        return start + self.headers.serialize() + CRLF + self.body

    def __repr__(self) -> str:
        return f"HttpRequest({self.method} {self.url} {self.version})"


class HttpResponse:
    """An HTTP response; Content-Length is always set so framing is exact."""

    STATUS_REASONS = {
        200: "OK",
        204: "No Content",
        301: "Moved Permanently",
        302: "Found",
        400: "Bad Request",
        404: "Not Found",
        500: "Internal Server Error",
        502: "Bad Gateway",
        503: "Service Unavailable",
        504: "Gateway Timeout",
    }

    def __init__(
        self,
        status: int = 200,
        headers: Optional[Mapping[str, str]] = None,
        body: bytes = b"",
        version: str = "HTTP/1.1",
        reason: Optional[str] = None,
    ):
        self.status = status
        self.reason = reason or self.STATUS_REASONS.get(status, "Unknown")
        self.version = version
        self.headers = headers if isinstance(headers, Headers) else Headers(headers)
        self.body = body
        self.headers.set("Content-Length", str(len(body)))

    @property
    def ok(self) -> bool:
        return 200 <= self.status < 300

    def serialize(self) -> bytes:
        start = f"{self.version} {self.status} {self.reason}".encode() + CRLF
        return start + self.headers.serialize() + CRLF + self.body

    def __repr__(self) -> str:
        return f"HttpResponse({self.status} {self.reason}, {len(self.body)} bytes)"


def parse_request_line(line: bytes) -> Tuple[str, str, str]:
    parts = line.decode("latin-1").split(" ", 2)
    if len(parts) != 3 or not parts[2].startswith("HTTP/"):
        raise HttpError(f"malformed request line {line!r}")
    return parts[0], parts[1], parts[2]


def parse_status_line(line: bytes) -> Tuple[str, int, str]:
    parts = line.decode("latin-1").split(" ", 2)
    if len(parts) < 2 or not parts[0].startswith("HTTP/"):
        raise HttpError(f"malformed status line {line!r}")
    try:
        status = int(parts[1])
    except ValueError as exc:
        raise HttpError(f"bad status code in {line!r}") from exc
    reason = parts[2] if len(parts) == 3 else ""
    return parts[0], status, reason
