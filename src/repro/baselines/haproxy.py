"""HAProxy-style proxy load balancer (paper Sections 2.2-2.3).

Each instance terminates the client connection with a full TCP stack,
parses the request, selects a backend with the same linear rule scan YODA
uses (YODA reuses HAProxy's classification algorithm), opens a backend
connection from its *own* IP, and splices bytes between the two sockets
(in-kernel TCP splicing -- hence lower per-packet cost than YODA's
user-space driver, per Section 7.1).

The crucial difference from YODA: both TCP control blocks and the
client->backend binding live only in this process.  Kill the VM and every
flow it carried is unrecoverable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.policy import VipPolicy
from repro.core.selector import AllHealthy, BackendView, RuleTable, ScanCostModel
from repro.errors import HttpError
from repro.http.message import HttpRequest
from repro.http.parser import HttpParser
from repro.l4lb.service import L4LoadBalancer
from repro.net.host import Host
from repro.obs import OBS
from repro.sim.cpu import CpuModel
from repro.sim.events import EventLoop
from repro.sim.metrics import MetricRegistry
from repro.sim.process import PeriodicTask
from repro.sim.random import SeededRng
from repro.tcp.config import TcpConfig
from repro.tcp.endpoint import ConnectionHandler, TcpConnection, TcpStack


@dataclass
class HAProxyCostModel:
    """Calibrated to Section 7.1: ~46% CPU at 12K small req/s (roughly half
    of YODA's user-space cost) and slightly lower per-request latency."""

    request_cpu: float = 3.8e-5
    byte_cpu: float = 0.7e-9
    splice_latency: float = 2.0e-4  # kernel splicing per forwarded chunk
    connect_latency: float = 1.0e-4


class HAProxyInstance:
    """One HAProxy VM behind the L4 LB (it answers for the VIP address the
    L4 LB delivers, client-side; backend connections use its own IP)."""

    def __init__(
        self,
        host: Host,
        loop: EventLoop,
        rng: SeededRng,
        cost_model: Optional[HAProxyCostModel] = None,
        scan_cost_model: Optional[ScanCostModel] = None,
        tcp_config: Optional[TcpConfig] = None,
    ):
        self.host = host
        self.loop = loop
        self.rng = rng.fork(f"haproxy/{host.name}")
        self.cost = cost_model or HAProxyCostModel()
        self.scan_cost_model = scan_cost_model or ScanCostModel()
        self.cpu = CpuModel(loop, owner=host.name)
        self.metrics = MetricRegistry(host.name)
        self.backend_view: BackendView = AllHealthy()
        self.stack = TcpStack(host, loop, tcp_config or TcpConfig())
        self.policies: Dict[str, VipPolicy] = {}
        self._tables: Dict[str, RuleTable] = {}
        self._listening: set = set()
        self.active_splices = 0
        self.requests_handled = 0

    @property
    def name(self) -> str:
        return self.host.name

    @property
    def ip(self) -> str:
        return self.host.ip

    def fail(self) -> None:
        self.host.fail()

    def recover(self) -> None:
        self.host.recover()

    def install_policy(self, policy: VipPolicy) -> None:
        self.policies[policy.vip] = policy
        self._tables[policy.vip] = RuleTable(policy.rules, self.scan_cost_model)
        if policy.port not in self._listening:
            self._listening.add(policy.port)
            self.stack.listen(policy.port, self._accept)

    def rule_count(self) -> int:
        return sum(p.rule_count for p in self.policies.values())

    def _accept(self, conn: TcpConnection) -> ConnectionHandler:
        return _FrontendHandler(self, conn)

    def table_for(self, vip: str) -> Optional[RuleTable]:
        return self._tables.get(vip)


class _FrontendHandler(ConnectionHandler):
    """Client-side connection: parse, select, then splice."""

    def __init__(self, proxy: HAProxyInstance, conn: TcpConnection):
        self.proxy = proxy
        self.front = conn
        self.back: Optional[TcpConnection] = None
        self.parser = HttpParser("request")
        self.pending_front_bytes = bytearray()  # bytes to replay to backend
        self.back_established = False
        self.front_closed = False
        self._inflight = {"front": 0, "back": 0}  # spliced chunks not yet delivered
        self._close_when_drained = {"front": False, "back": False}
        # trace context adopted from the client's SYN, when tracing is on
        self._obs_ctx = conn.obs_ctx if OBS.enabled else None
        self._span_connect = None

    # -- client side ----------------------------------------------------------
    def on_data(self, conn: TcpConnection, data: bytes) -> None:
        self.pending_front_bytes.extend(data)
        if self.back is None:
            try:
                parsed = self.parser.feed(data)
            except HttpError:
                conn.abort("bad-request")
                return
            if parsed or self.parser.header_complete():
                request = parsed[0].message if parsed else None
                self._select_backend(request)
        elif self.back_established:
            self._splice(self.back, "back", bytes(data))
            self.pending_front_bytes.clear()

    def _select_backend(self, request: Optional[HttpRequest]) -> None:
        vip = self.front.local.ip
        policy = self.proxy.policies.get(vip)
        table = self.proxy.table_for(vip)
        if policy is None or table is None:
            self.front.abort("no-policy")
            return
        if request is None:
            # header complete but unparsed (streaming body): rebuild
            parser = HttpParser("request")
            idx = bytes(self.pending_front_bytes).find(b"\r\n\r\n")
            msgs = parser.feed(bytes(self.pending_front_bytes[:idx]) + b"\r\n\r\n")
            if not msgs:
                return
            request = msgs[0].message
        result = table.select(request, self.proxy.rng, self.proxy.backend_view)
        if result is None:
            self.front.abort("no-backend")
            return
        self.proxy.cpu.execute(self.proxy.cost.request_cpu, phase="request")
        self.proxy.requests_handled += 1
        self.proxy.metrics.counter("requests").inc()
        self.proxy.metrics.histogram("scan_latency").observe(result.scan_latency)
        if OBS.enabled:
            span = OBS.tracer.start("rule_scan", self.proxy.name,
                                    ctx=self._obs_ctx)
            OBS.tracer.end(span, end=span.start + result.scan_latency,
                           ok=True, backend=result.backend)
        backend_ep = policy.endpoint_of(result.backend)
        # rule-scan latency elapses before the backend connection opens
        self.proxy.loop.call_later(result.scan_latency, self._connect_backend,
                                   backend_ep)

    def _connect_backend(self, backend_ep) -> None:
        if self.front.state.closed:
            return
        self._connect_started = self.proxy.loop.now()
        if OBS.enabled:
            self._span_connect = OBS.tracer.start(
                "server_connect", self.proxy.name, ctx=self._obs_ctx,
                start=self._connect_started)
        self.back = self.proxy.stack.connect(backend_ep, _BackendHandler(self),
                                             obs_ctx=self._obs_ctx)

    def backend_connected(self) -> None:
        self.back_established = True
        now = self.proxy.loop.now()
        self.proxy.metrics.histogram("server_connect_latency").observe(
            now - self._connect_started
        )
        if OBS.enabled and self._span_connect is not None:
            OBS.tracer.end(self._span_connect, end=now, ok=True)
            self._span_connect = None
        if self.pending_front_bytes:
            self._splice(self.back, "back", bytes(self.pending_front_bytes))
            self.pending_front_bytes.clear()
        if self.front_closed:
            self._close_side("back")

    def backend_data(self, data: bytes) -> None:
        if self.front.state.can_send:
            self._splice(self.front, "front", data)

    def backend_closed(self) -> None:
        self._close_side("front")

    def _splice(self, conn: TcpConnection, side: str, data: bytes) -> None:
        cost = self.proxy.cost.byte_cpu * len(data)
        self.proxy.cpu.execute(cost, phase="splice")
        self._inflight[side] += 1
        self.proxy.loop.call_later(
            self.proxy.cost.splice_latency, self._deliver, conn, side, data
        )

    def _deliver(self, conn: TcpConnection, side: str, data: bytes) -> None:
        self._inflight[side] -= 1
        if conn.state.can_send:
            conn.send(data)
        if self._close_when_drained[side] and self._inflight[side] == 0:
            if conn.state.can_send:
                conn.close()

    def _close_side(self, side: str) -> None:
        """Close a side once all bytes spliced toward it have been sent."""
        conn = self.front if side == "front" else self.back
        if conn is None:
            return
        if self._inflight[side] > 0:
            self._close_when_drained[side] = True
        elif conn.state.can_send:
            conn.close()

    def on_remote_close(self, conn: TcpConnection) -> None:
        self.front_closed = True
        if self.back is not None and self.back_established:
            self._close_side("back")

    def on_error(self, conn: TcpConnection, reason: str) -> None:
        if self.back is not None and not self.back.state.closed:
            self.back.abort("front-error")

    def on_closed(self, conn: TcpConnection) -> None:
        pass


class _BackendHandler(ConnectionHandler):
    def __init__(self, frontend: _FrontendHandler):
        self.frontend = frontend

    def on_connected(self, conn: TcpConnection) -> None:
        self.frontend.backend_connected()

    def on_data(self, conn: TcpConnection, data: bytes) -> None:
        self.frontend.backend_data(data)

    def on_remote_close(self, conn: TcpConnection) -> None:
        conn.close()
        self.frontend.backend_closed()

    def on_error(self, conn: TcpConnection, reason: str) -> None:
        front = self.frontend.front
        if not front.state.closed:
            front.abort("backend-error")


class HAProxyDeployment:
    """HAProxy instances behind the L4 LB with a conventional health check.

    The health checker removes a dead instance from the VIP mapping so
    *new* flows avoid it -- but, unlike YODA's controller, it cannot flush
    established flows to other instances (they would have no state there),
    so those flows stay pinned to the dead VM and break.
    """

    def __init__(
        self,
        loop: EventLoop,
        l4lb: L4LoadBalancer,
        instances: List[HAProxyInstance],
        check_interval: float = 0.6,
    ):
        self.loop = loop
        self.l4lb = l4lb
        self.instances = {i.name: i for i in instances}
        self._alive = {i.name: True for i in instances}
        self.vips: List[str] = []
        self._checker = PeriodicTask(loop, check_interval, self._check)
        self._checker.start()

    def add_vip(self, policy: VipPolicy) -> None:
        for instance in self.instances.values():
            instance.install_policy(policy)
        self.l4lb.register_vip(policy.vip)
        self.vips.append(policy.vip)
        self._push_mappings()

    def set_backend_view(self, view: BackendView) -> None:
        for instance in self.instances.values():
            instance.backend_view = view

    def _live_ips(self) -> List[str]:
        return [i.ip for i in self.instances.values() if self._alive[i.name]]

    def _push_mappings(self) -> None:
        ips = self._live_ips()
        for vip in self.vips:
            # flush_removed=False: established flows stay pinned to the
            # dead instance -- the defining HAProxy failure behaviour
            self.l4lb.update_mapping(vip, ips, flush_removed=False)

    def _check(self) -> None:
        changed = False
        for name, instance in self.instances.items():
            alive = not instance.host.failed
            if alive != self._alive[name]:
                self._alive[name] = alive
                changed = True
        if changed:
            self._push_mappings()
