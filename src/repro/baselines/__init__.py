"""Baselines the paper compares YODA against.

- :class:`~repro.baselines.haproxy.HAProxyInstance` -- the proxy-style L7
  LB (Section 2.2): terminates client and backend TCP connections with its
  *own* stack, keeps all flow state locally, splices bytes between the two
  sockets.  When the VM dies, both TCP states die with it -- Problem 1 of
  Section 2.3.
- :class:`~repro.baselines.haproxy.HAProxyDeployment` -- several HAProxy
  instances behind the L4 LB with a conventional health checker: failed
  instances are removed for *new* flows, but established flows stay pinned
  (there is no flow-state store to migrate them with).
"""

from repro.baselines.haproxy import HAProxyCostModel, HAProxyDeployment, HAProxyInstance

__all__ = ["HAProxyInstance", "HAProxyDeployment", "HAProxyCostModel"]
