"""Pure scale-decision logic: hysteresis, cooldowns, step limits.

The engine is deliberately free of simulator state -- it consumes a
:class:`~repro.autoscale.signals.SignalSnapshot` and returns a
:class:`ScaleDecision`; the actuation (and every side effect) lives in
:mod:`repro.autoscale.engine`.  That split is what lets the legacy
Fig. 13 CPU-watermark policy ride the same code path as the full
elastic policy: :meth:`ElasticPolicy.from_legacy` maps the old
``AutoscaleConfig`` onto a preset whose decisions are arithmetic-
identical to the historical ``_autoscale_pass``.

State machine (per the auto-scaling-group pattern)::

            pressure > band          idle < band
    steady ----------------> out    ----------------> in
      ^                      |         |
      |   cooldown_out       |         |  cooldown_in
      +----------------------+---------+

A decision inside a cooldown window is *refused*, not queued: queued
intent goes stale faster than the signals that produced it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional

from repro.autoscale.signals import SignalSnapshot


@dataclass
class ElasticPolicy:
    """Knobs for the closed loop.  Defaults mirror the legacy Fig. 13
    preset; ``from_legacy`` is the canonical way to get that preset."""

    # hysteresis band on the primary (CPU) signal
    high_watermark: float = 0.70  # add capacity above this average CPU
    low_watermark: float = 0.25  # release capacity below this
    target: float = 0.55  # size so average CPU lands here
    check_interval: float = 5.0
    # secondary pressure signals: queues build before CPU does, so the
    # qos plane's signals can trip scale-out while CPU still looks fine.
    # None disarms a signal (the legacy preset uses CPU only).
    admission_pressure_high: Optional[float] = None  # 1 - bucket fraction
    limiter_saturation_high: Optional[float] = None  # inflight / AIMD limit
    # safety rails
    cooldown_out: float = 0.0  # seconds between scale-out events
    cooldown_in: float = 0.0  # seconds after ANY event before a scale-in
    step_out: int = 0  # max instances added per decision (0 = unbounded)
    step_in: int = 1  # max instances drained per decision
    min_instances: int = 1
    max_instances: int = 0  # 0 = unbounded
    scale_down: bool = False
    # scale in by draining (make-before-break) instead of instant removal
    drain: bool = True
    drain_deadline: Optional[float] = None  # None = controller default
    # refuse new decisions while a drain is still in flight, and raise
    # typed errors instead of silently holding (the modern loop); the
    # legacy preset keeps the historical quiet behavior
    serialize_events: bool = False
    # -- store-replica elasticity -----------------------------------------
    scale_stores: bool = False
    instances_per_store: int = 3  # target ceil(live / this) store servers
    min_stores: int = 2  # never below the replication factor
    max_stores: int = 0  # 0 = unbounded

    @classmethod
    def from_legacy(cls, cfg) -> "ElasticPolicy":
        """Compatibility preset for ``core.controller.AutoscaleConfig``:
        same watermarks, same sizing rule, no cooldowns, no step limits,
        quiet capacity starvation -- decision-for-decision identical to
        the pre-subsystem ``_autoscale_pass``."""
        return cls(
            high_watermark=cfg.high_watermark,
            low_watermark=cfg.low_watermark,
            target=cfg.target,
            check_interval=cfg.check_interval,
            scale_down=cfg.scale_down,
            drain=cfg.drain,
            cooldown_out=0.0,
            cooldown_in=0.0,
            step_out=0,
            step_in=1,
            min_instances=1,
            serialize_events=False,
        )


@dataclass
class ScaleDecision:
    """One evaluated tick: what to do and why (the why is what the
    flight recorder keeps)."""

    kind: str  # "out" | "in" | "hold"
    count: int = 0
    reason: str = ""
    signals: Optional[SignalSnapshot] = None


@dataclass
class PolicyEngine:
    """Hysteresis + cooldown + step-limit state over an ElasticPolicy."""

    policy: ElasticPolicy
    last_out_at: Optional[float] = None
    last_in_at: Optional[float] = None
    refusals: int = field(default=0)

    # ------------------------------------------------------------ pressure --
    def pressure_reason(self, snap: SignalSnapshot) -> Optional[str]:
        """Why the deployment is overloaded, or None if it is not."""
        p = self.policy
        if snap.avg_cpu > p.high_watermark:
            return f"cpu {snap.avg_cpu:.2f} > {p.high_watermark:.2f}"
        if (p.admission_pressure_high is not None
                and snap.admission_pressure > p.admission_pressure_high):
            return (f"admission pressure {snap.admission_pressure:.2f} > "
                    f"{p.admission_pressure_high:.2f}")
        if (p.limiter_saturation_high is not None
                and snap.limiter_saturation > p.limiter_saturation_high):
            return (f"limiter saturation {snap.limiter_saturation:.2f} > "
                    f"{p.limiter_saturation_high:.2f}")
        return None

    def idle(self, snap: SignalSnapshot) -> bool:
        p = self.policy
        if snap.avg_cpu >= p.low_watermark:
            return False
        # never release capacity while a secondary signal shows pressure
        if (p.admission_pressure_high is not None
                and snap.admission_pressure > p.admission_pressure_high / 2):
            return False
        return True

    # ------------------------------------------------------------ cooldowns --
    def cooling_out_until(self, now: float) -> Optional[float]:
        if self.last_out_at is None or self.policy.cooldown_out <= 0:
            return None
        until = self.last_out_at + self.policy.cooldown_out
        return until if now < until else None

    def cooling_in_until(self, now: float) -> Optional[float]:
        """Scale-in cools down after *any* event: draining capacity right
        after adding it is the flapping the converge invariant forbids."""
        if self.policy.cooldown_in <= 0:
            return None
        marks = [t for t in (self.last_out_at, self.last_in_at) if t is not None]
        if not marks:
            return None
        until = max(marks) + self.policy.cooldown_in
        return until if now < until else None

    # ------------------------------------------------------------- decision --
    def decide(self, snap: SignalSnapshot,
               drain_in_flight: bool = False) -> ScaleDecision:
        p = self.policy
        live = snap.live
        reason = self.pressure_reason(snap)
        if reason is not None:
            if drain_in_flight and p.serialize_events:
                self.refusals += 1
                return ScaleDecision("hold", reason="conflict: drain in flight",
                                     signals=snap)
            until = self.cooling_out_until(snap.time)
            if until is not None:
                self.refusals += 1
                return ScaleDecision(
                    "hold", reason=f"cooldown-out until t={until:.2f}",
                    signals=snap)
            # size so the current load would land on the target (the
            # legacy Fig. 13 rule), but always move by at least one
            wanted = max(live + 1, math.ceil(live * snap.avg_cpu / p.target))
            to_add = wanted - live
            if p.step_out > 0:
                to_add = min(to_add, p.step_out)
            if p.max_instances > 0:
                to_add = min(to_add, p.max_instances - live)
            if to_add <= 0:
                return ScaleDecision("hold", reason="at max_instances",
                                     signals=snap)
            return ScaleDecision("out", to_add, reason, snap)

        floor = max(1, p.min_instances)
        if p.scale_down and live > floor and self.idle(snap):
            if drain_in_flight and p.serialize_events:
                self.refusals += 1
                return ScaleDecision("hold", reason="conflict: drain in flight",
                                     signals=snap)
            until = self.cooling_in_until(snap.time)
            if until is not None:
                self.refusals += 1
                return ScaleDecision(
                    "hold", reason=f"cooldown-in until t={until:.2f}",
                    signals=snap)
            # fixed-step release (the classic ASG shape): hysteresis plus
            # the cooldown -- not a sizing formula -- bound the descent rate
            to_remove = min(max(1, p.step_in), live - floor)
            if to_remove <= 0:
                return ScaleDecision("hold", reason="at min_instances",
                                     signals=snap)
            return ScaleDecision(
                "in", to_remove,
                f"cpu {snap.avg_cpu:.2f} < {p.low_watermark:.2f}", snap)

        return ScaleDecision("hold", reason="in band", signals=snap)

    # ------------------------------------------------------------ journal --
    def journal_state(self) -> dict:
        return {"last_out_at": self.last_out_at, "last_in_at": self.last_in_at}

    def restore(self, state: dict) -> None:
        self.last_out_at = state.get("last_out_at")
        self.last_in_at = state.get("last_in_at")
