"""The autoscaler actuator: closes the loop through the control plane.

Scale-out adopts provisioned spares (``controller.spares``) first and
falls back to a spawn hook (``YodaService.new_spare_instance``); both
end in ``controller.add_instance``, whose fenced mapping pushes carry
the leader epoch.  Scale-in is make-before-break:
``controller.drain_instance(..., to_spare=True)`` bleeds flows and
returns the instance to the spare pool.  Store-replica scaling adds or
decommissions TCPStore servers through cluster membership, whose epoch
bump wakes every instance's anti-entropy sweeper to re-replicate.

Every decision -- including refusals -- is flight-recorded, and the
engine's clocks plus a bounded event ledger ride the controller's
leader journal, so a newly elected leader resumes cooldowns and the
oscillation history instead of re-deciding from amnesia (the in-flight
drain of a scale-in is replayed by the journal's ``draining`` section).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Callable, List, Optional

from repro.autoscale.policy import ElasticPolicy, PolicyEngine, ScaleDecision
from repro.autoscale.signals import SignalReader, SignalSnapshot
from repro.errors import ScaleEventConflict, SpareExhausted, StaleLeaderEpoch
from repro.obs import OBS
from repro.sim.process import PeriodicTask

JOURNALED_EVENTS = 16  # ledger tail carried through the leader journal


@dataclass
class ScaleEvent:
    """One actuated (or starved) scale event, for the converge invariant
    and the journal."""

    at: float
    kind: str  # "out" | "in" | "store-out" | "store-in" | "starved"
    count: int
    reason: str
    live_after: int


class Autoscaler:
    """Periodic closed loop bound to one controller replica.

    Under controller HA every replica carries its own (identically
    configured) Autoscaler; the ``acting()`` gate means only the leader's
    ticks actuate, and a takeover restores this engine's clocks from the
    journal before its first tick.
    """

    def __init__(
        self,
        controller,
        policy: Optional[ElasticPolicy] = None,
        *,
        spawn_instance: Optional[Callable[[], object]] = None,
        spawn_store: Optional[Callable[[], object]] = None,
        scraper=None,
        signals: Optional[SignalReader] = None,
    ):
        self.controller = controller
        self.policy = policy or ElasticPolicy()
        self.engine = PolicyEngine(self.policy)
        self.signals = signals or SignalReader(controller, scraper=scraper)
        self.spawn_instance = spawn_instance
        self.spawn_store = spawn_store
        self.events: List[ScaleEvent] = []
        self._elastic_stores: List[str] = []  # stores this engine added
        self._task = PeriodicTask(
            controller.loop, self.policy.check_interval, self.tick
        )

    # ------------------------------------------------------------ lifecycle --
    @property
    def running(self) -> bool:
        return self._task.running

    def start(self) -> "Autoscaler":
        self._task.start()
        return self

    def stop(self) -> None:
        self._task.stop()

    # ----------------------------------------------------------- decisions --
    def tick(self) -> None:
        ctl = self.controller
        if not ctl.acting():
            return
        try:
            self._pass()
        except StaleLeaderEpoch as exc:
            ctl.metrics.counter("pushes_fenced").inc()
            if ctl.on_fenced is not None:
                ctl.on_fenced(exc)
        except (ScaleEventConflict, SpareExhausted) as exc:
            ctl.metrics.counter("scale_refused").inc()
            if OBS.enabled:
                OBS.flight("autoscale", type(exc).__name__, str(exc))
        except Exception as exc:  # noqa: BLE001 - same boundary as the monitor
            ctl.metrics.counter("monitor_tick_errors").inc()
            if OBS.enabled:
                OBS.flight("controller", "autoscale_error",
                           f"{type(exc).__name__}: {exc}")

    def _pass(self) -> None:
        snap = self.signals.collect()
        if snap.live == 0:
            return
        decision = self.engine.decide(snap, drain_in_flight=self.in_flight())
        self._flight(decision, snap)
        if decision.kind == "out":
            self._scale_out(decision, snap)
        elif decision.kind == "in":
            self._scale_in(decision, snap)
        if self.policy.scale_stores:
            self._reconcile_stores(snap)

    def in_flight(self) -> bool:
        """A make-before-break drain is still bleeding flows."""
        return bool(self.controller.draining)

    def _flight(self, decision: ScaleDecision, snap: SignalSnapshot) -> None:
        # forensics on EVERY decision: a chaos violation's tail shows what
        # the policy saw and why it moved (or refused to)
        if not OBS.enabled:
            return
        OBS.flight(
            "autoscale", f"decide_{decision.kind}",
            f"live={snap.live} cpu={snap.avg_cpu:.2f} "
            f"adm={snap.admission_pressure:.2f} "
            f"lim={snap.limiter_saturation:.2f} n={decision.count} "
            f"[{decision.reason}]",
        )

    # ------------------------------------------------------------- actuate --
    def _record(self, kind: str, count: int, reason: str) -> None:
        live_after = len(self.signals.live_instances())
        self.events.append(ScaleEvent(
            self.controller.loop.now(), kind, count, reason, live_after))

    def _adopt_one(self):
        ctl = self.controller
        if ctl.spares:
            return ctl.spares.pop(0)
        if self.spawn_instance is not None:
            instance = self.spawn_instance()
            # spawn hooks register through add_spare; reclaim it so the
            # adoption below is the only path into the mapping
            if instance in ctl.spares:
                ctl.spares.remove(instance)
            return instance
        return None

    def _scale_out(self, decision: ScaleDecision, snap: SignalSnapshot) -> None:
        ctl = self.controller
        added = 0
        for _ in range(decision.count):
            spare = self._adopt_one()
            if spare is None:
                break
            ctl.add_instance(spare)
            added += 1
        if added:
            ctl.metrics.counter("scaled_up").inc(added)
            self.engine.last_out_at = snap.time
            self._record("out", added, decision.reason)
            if OBS.enabled:
                OBS.flight("autoscale", "scale_out",
                           f"+{added} instance(s) [{decision.reason}]")
            ctl.journal_sync()
        if added < decision.count and self.policy.serialize_events:
            self._record("starved", decision.count - added, decision.reason)
            raise SpareExhausted(decision.count, added)

    def _scale_in(self, decision: ScaleDecision, snap: SignalSnapshot) -> None:
        ctl = self.controller
        victims = self.signals.live_instances()[-decision.count:]
        for victim in reversed(victims):
            if self.policy.drain:
                ctl.drain_instance(victim.name, deadline=self.policy.drain_deadline,
                                   to_spare=True)
            else:
                ctl.remove_instance(victim.name)
                ctl.spares.append(victim)
        ctl.metrics.counter("scaled_down").inc(len(victims))
        self.engine.last_in_at = snap.time
        self._record("in", len(victims), decision.reason)
        if OBS.enabled:
            OBS.flight("autoscale", "scale_in",
                       f"-{len(victims)} instance(s) [{decision.reason}]")
        ctl.journal_sync()

    # ------------------------------------------------------ operator entry --
    def request_scale_out(self, count: int = 1):
        """Operator-initiated scale-out on the same rails (cooldowns and
        in-flight drains refuse it, typed)."""
        now = self.controller.loop.now()
        if self.policy.serialize_events and self.in_flight():
            raise ScaleEventConflict("out", "drain", now)
        until = self.engine.cooling_out_until(now)
        if until is not None:
            raise ScaleEventConflict("out", "cooldown-out", until)
        if not self.controller.spares and self.spawn_instance is None:
            raise SpareExhausted(count, 0)
        self._scale_out(ScaleDecision("out", count, "operator request"),
                        self.signals.collect(reset_windows=False))

    def request_scale_in(self, count: int = 1):
        now = self.controller.loop.now()
        if self.policy.serialize_events and self.in_flight():
            raise ScaleEventConflict("in", "drain", now)
        until = self.engine.cooling_in_until(now)
        if until is not None:
            raise ScaleEventConflict("in", "cooldown-in", until)
        self._scale_in(ScaleDecision("in", count, "operator request"),
                       self.signals.collect(reset_windows=False))

    # ------------------------------------------------------- store scaling --
    def _reconcile_stores(self, snap: SignalSnapshot) -> None:
        ctl = self.controller
        cluster = ctl.kv_cluster
        if cluster is None:
            return
        p = self.policy
        import math

        target = max(p.min_stores,
                     math.ceil(snap.live / max(1, p.instances_per_store)))
        if p.max_stores > 0:
            target = min(target, p.max_stores)
        current = len(cluster.servers)
        # one membership change per tick: each epoch bump triggers a full
        # anti-entropy pass, so let re-replication settle between moves
        if target > current and self.spawn_store is not None:
            server = self.spawn_store()
            cluster.add(server)
            self._elastic_stores.append(server.name)
            ctl.metrics.counter("stores_scaled_up").inc()
            self._record("store-out", 1, f"target {target} > {current}")
            if OBS.enabled:
                OBS.flight("autoscale", "store_out",
                           f"+{server.name} (epoch {cluster.epoch})")
        elif target < current and self._elastic_stores:
            name = self._elastic_stores.pop()
            ctl.decommission_store(name)
            ctl.metrics.counter("stores_scaled_down").inc()
            self._record("store-in", 1, f"target {target} < {current}")
            if OBS.enabled:
                OBS.flight("autoscale", "store_in",
                           f"-{name} (epoch {cluster.epoch})")

    # ------------------------------------------------------------- journal --
    def journal_state(self) -> dict:
        return {
            "policy": self.engine.journal_state(),
            "elastic_stores": list(self._elastic_stores),
            "event_count": len(self.events),
            "events": [asdict(e) for e in self.events[-JOURNALED_EVENTS:]],
        }

    def restore(self, state: Optional[dict]) -> None:
        """Adopt a previous leader's clocks and ledger tail (takeover).
        The in-flight drain of an interrupted scale-in is resumed by the
        journal's ``draining`` replay, not here."""
        if not state:
            return
        self.engine.restore(state.get("policy") or {})
        self._elastic_stores = list(state.get("elastic_stores") or [])
        self.events = [ScaleEvent(**e) for e in state.get("events") or []]
        self.controller.metrics.counter("autoscale_restores").inc()
        if OBS.enabled:
            OBS.flight("autoscale", "restore",
                       f"adopted {len(self.events)} journaled event(s)")
