"""Closed-loop elastic scaling (auto-scaling-group pattern, sim-time).

The subsystem splits the loop into three testable layers:

- :mod:`repro.autoscale.signals` -- reads the deployment's live pressure
  signals (per-instance CPU windows, admission-bucket depletion, AIMD
  limiter saturation, sketch latency quantiles, scraped shed rates).
- :mod:`repro.autoscale.policy` -- a pure decision engine: hysteresis
  bands around a utilization target, separate scale-out/scale-in
  cooldowns, per-decision step limits, and floor/ceiling bounds.
- :mod:`repro.autoscale.engine` -- the actuator: adopts spares or spawns
  instances on scale-out, drains make-before-break on scale-in, bumps
  store-cluster membership epochs for replica scaling, journals its
  clocks and event ledger through the leader journal, and flight-records
  every decision.

Nothing here runs unless explicitly armed (``YodaService.enable_elastic``
or the legacy ``controller.enable_autoscaling``), so golden traces stay
bit-identical by construction.
"""

from repro.autoscale.engine import Autoscaler, ScaleEvent
from repro.autoscale.policy import ElasticPolicy, PolicyEngine, ScaleDecision
from repro.autoscale.signals import SignalReader, SignalSnapshot

__all__ = [
    "Autoscaler",
    "ElasticPolicy",
    "PolicyEngine",
    "ScaleDecision",
    "ScaleEvent",
    "SignalReader",
    "SignalSnapshot",
]
