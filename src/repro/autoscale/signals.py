"""Pressure-signal collection for the autoscaler.

One snapshot per policy tick, pulled straight from the live objects the
controller already owns (CPU windows, qos admission buckets, AIMD
limiters, sketch-backed latency histograms) plus -- when a
``MetricScraper`` is attached -- the scraped ``*.rate`` series for shed
traffic.  All reads are pure: collecting a snapshot schedules nothing,
which is what keeps a disarmed autoscaler zero-perturbation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional


@dataclass
class SignalSnapshot:
    """What the deployment looked like at one decision point."""

    time: float
    live: int  # alive + active + not draining instances
    avg_cpu: float  # mean utilization over the last window
    max_cpu: float
    admission_pressure: float  # 0..1: worst token-bucket depletion
    limiter_saturation: float  # 0..1: worst inflight / AIMD limit
    latency_p95: Optional[float] = None  # sketch quantile, seconds
    shed_rate: float = 0.0  # scraped SYNs shed per second


class SignalReader:
    """Collects :class:`SignalSnapshot` from a controller's deployment."""

    def __init__(self, controller, scraper=None,
                 latency_histogram: str = "server_connect_latency"):
        self.controller = controller
        self.scraper = scraper
        self.latency_histogram = latency_histogram

    # -------------------------------------------------------------- helpers --
    def live_instances(self) -> List[object]:
        ctl = self.controller
        return [
            ctl.instances[n] for n in ctl.instances
            if ctl._instance_alive[n] and ctl.active.get(n)
            and n not in ctl.draining
        ]

    def _admission_pressure(self, instance, now: float) -> float:
        qos = getattr(instance, "qos", None)
        if qos is None or qos.admission is None:
            return 0.0
        worst = 0.0
        for vip in self.controller.policies:
            level = qos.admission.bucket_level(vip, now)
            if level is not None:
                worst = max(worst, 1.0 - level)
        return worst

    @staticmethod
    def _limiter_saturation(instance) -> float:
        qos = getattr(instance, "qos", None)
        limiter = getattr(qos, "limiter", None) if qos is not None else None
        if limiter is None or limiter.limit <= 0:
            return 0.0
        return limiter.inflight / limiter.limit

    def _latency_p95(self, live) -> Optional[float]:
        worst = None
        for instance in live:
            hist = instance.metrics.histograms.get(self.latency_histogram)
            if hist is None or hist.count == 0:
                continue
            p95 = hist.percentile(95.0)
            if worst is None or p95 > worst:
                worst = p95
        return worst

    def _shed_rate(self) -> float:
        if self.scraper is None:
            return 0.0
        total = 0.0
        for name, series in self.scraper.series.items():
            if name.endswith("syns_shed.rate") and series.values:
                total += max(0.0, series.values[-1])
        return total

    # -------------------------------------------------------------- collect --
    def collect(self, reset_windows: bool = True) -> SignalSnapshot:
        ctl = self.controller
        now = ctl.loop.now()
        live = self.live_instances()
        if not live:
            return SignalSnapshot(now, 0, 0.0, 0.0, 0.0, 0.0)
        utils = [i.cpu.utilization_window() for i in live]
        if reset_windows:
            for i in live:
                i.cpu.reset_window()
        admission = max(self._admission_pressure(i, now) for i in live)
        limiter = max(self._limiter_saturation(i) for i in live)
        return SignalSnapshot(
            time=now,
            live=len(live),
            avg_cpu=sum(utils) / len(utils),
            max_cpu=max(utils),
            admission_pressure=admission,
            limiter_saturation=limiter,
            latency_p95=self._latency_p95(live),
            shed_rate=self._shed_rate(),
        )
