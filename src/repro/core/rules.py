"""The OpenFlow-like L7 rule model (paper Section 5.1, Table 3).

A rule is (name, priority, match, action).  Matches cover the fields the
paper's interface exposes: URL globs, cookies, arbitrary HTTP headers and
the method.  Actions either split traffic across weighted backends (weight
-1 selects the least-loaded backend) or consult a sticky-session table
keyed by a cookie.
"""

from __future__ import annotations

import fnmatch
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.errors import PolicyError
from repro.http.message import HttpRequest

LEAST_LOADED = -1.0


@dataclass(frozen=True)
class Match:
    """Conditions a request must satisfy (all of them; None = wildcard)."""

    url: Optional[str] = None  # glob over host+path, e.g. "*.jpg"
    path: Optional[str] = None  # glob over path only
    cookie: Optional[str] = None  # "name" (presence) or "name=glob"
    header: Optional[str] = None  # "Header-Name=glob"
    method: Optional[str] = None  # exact, e.g. "GET"

    def matches(self, request: HttpRequest) -> bool:
        if self.method is not None and request.method != self.method.upper():
            return False
        if self.url is not None and not fnmatch.fnmatchcase(request.url, self.url):
            return False
        if self.path is not None and not fnmatch.fnmatchcase(request.path, self.path):
            return False
        if self.cookie is not None:
            name, sep, pattern = self.cookie.partition("=")
            value = request.cookie(name)
            if value is None:
                return False
            if sep and not fnmatch.fnmatchcase(value, pattern):
                return False
        if self.header is not None:
            name, sep, pattern = self.header.partition("=")
            value = request.headers.get(name)
            if value is None:
                return False
            if sep and not fnmatch.fnmatchcase(value, pattern):
                return False
        return True

    def describe(self) -> str:
        parts = [
            f"{label}={value}"
            for label, value in (
                ("url", self.url), ("path", self.path), ("cookie", self.cookie),
                ("header", self.header), ("method", self.method),
            )
            if value is not None
        ]
        return " ".join(parts) or "*"


@dataclass(frozen=True)
class Action:
    """What to do with a matching request.

    Exactly one of:
    - ``split``: backend name -> weight.  All weights -1 = least-loaded.
    - ``table``: sticky-session table keyed by this cookie name; a client's
      cookie value is mapped to a stable backend (rendezvous hashing over
      the healthy members), so every instance agrees without coordination.
    """

    split: Optional[Dict[str, float]] = None
    table: Optional[str] = None  # cookie name
    table_members: tuple = ()  # backends eligible for the sticky table

    def __post_init__(self) -> None:
        if (self.split is None) == (self.table is None):
            raise PolicyError("action must have exactly one of split/table")
        if self.split is not None:
            if not self.split:
                raise PolicyError("split action needs at least one backend")
            weights = set(self.split.values())
            if any(w < 0 for w in weights) and weights != {LEAST_LOADED}:
                raise PolicyError(
                    "negative weights are only valid when ALL weights are -1 "
                    "(least-loaded mode)"
                )
            if all(w == 0 for w in weights):
                raise PolicyError("at least one weight must be non-zero")
        if self.table is not None and not self.table_members:
            raise PolicyError("table action needs table_members")

    @property
    def least_loaded(self) -> bool:
        return self.split is not None and all(
            w == LEAST_LOADED for w in self.split.values()
        )

    def backends(self) -> tuple:
        if self.split is not None:
            return tuple(self.split)
        return self.table_members

    def describe(self) -> str:
        if self.table is not None:
            return f"table={{{self.table}}}"
        if self.least_loaded:
            return f"least-loaded={{{','.join(self.split)}}}"
        inner = ", ".join(f"{k}={v}" for k, v in self.split.items())
        return f"split={{{inner}}}"


@dataclass(frozen=True)
class Rule:
    """One L7 rule: higher priority is consulted first (paper's extension
    to the HAProxy rule chain)."""

    name: str
    priority: int
    match: Match
    action: Action

    def __str__(self) -> str:
        return (f"Rule({self.name!r}, prio={self.priority}, "
                f"{self.match.describe()} -> {self.action.describe()})")
