"""One-call construction of a complete YODA deployment.

Wires up, in the testbed's shape (Section 7 setup): an L4 LB, N YODA
instance VMs, M Memcached (TCPStore) VMs with a shared cluster view, and
the controller.  Experiments and examples build on this instead of
hand-assembling hosts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.controller import StandbyRegion, YodaController
from repro.core.instance import YodaCostModel, YodaInstance
from repro.core.leader import (
    ControllerReplica,
    ControllerReplicaSet,
    FenceGate,
    LeaderElector,
)
from repro.core.policy import VipPolicy
from repro.core.selector import ScanCostModel
from repro.core.tcpstore import TcpStore
from repro.http.server import BackendHttpServer
from repro.kvstore.client import MemcachedCluster, ReplicatingKvClient
from repro.kvstore.memcached import MemcachedServer
from repro.kvstore.repair import FlowStateRepairer
from repro.kvstore.sitesync import SiteReplicator
from repro.l4lb.compact import StatelessConfig
from repro.l4lb.service import L4LoadBalancer
from repro.net.host import Host
from repro.net.network import Network
from repro.qos.config import HardeningConfig, QosConfig
from repro.sim.events import EventLoop
from repro.sim.random import SeededRng


@dataclass
class YodaServiceConfig:
    """Deployment sizing knobs (defaults mirror the paper's testbed)."""

    num_instances: int = 10
    num_store_servers: int = 10
    num_muxes: int = 4
    store_replicas: int = 2
    mapping_propagation: float = 0.2
    monitor_interval: float = 0.6
    down_after: int = 2  # consecutive failed probes to mark down
    up_after: int = 2  # consecutive good probes to mark up
    kv_op_timeout: float = 0.1
    kv_max_retries: int = 2
    kv_dead_after_timeouts: int = 3
    kv_quarantine: float = 1.0
    # self-healing store: read-repair + hinted handoff in the clients and
    # an anti-entropy sweeper per instance.  Off = the paper's client-side
    # replication exactly as published (the durability ablation).
    self_healing: bool = True
    repair_interval: float = 0.2
    repair_rate: float = 200.0  # keys re-replicated per second, per instance
    repair_burst: float = 40.0
    cost_model: YodaCostModel = field(default_factory=YodaCostModel)
    scan_cost_model: ScanCostModel = field(default_factory=ScanCostModel)
    instance_prefix: str = "10.1"
    store_prefix: str = "10.2"
    # -- cell namespacing (defaults reproduce the historical flat names/IPs
    # exactly; the sharded scale world stamps one namespace per cell so
    # many deployments can share a network -- or be cut across shards) --
    subnet: int = 0  # third IP octet for instance/store addresses
    site: str = "dc"  # primary site name
    host_prefix: str = ""  # prepended to every host name built here
    router_name: str = "l4-router"
    router_ip: str = "10.255.0.1"
    # overload-control plane (None = not constructed; a default QosConfig
    # is armed but neutral -- it never sheds, breaks or limits)
    qos: Optional[QosConfig] = None
    # one bundle overriding the scattered hardening knobs above, for
    # sweeps/ablations; defaults equal the historical constants exactly
    hardening: Optional[HardeningConfig] = None
    # -- multi-region (None = the historical single-site deployment; a
    # 1-site build constructs nothing extra and stays bit-identical) --
    standby_site: Optional[str] = None  # e.g. "dc2": build a standby region
    num_standby_instances: int = 0  # 0 -> num_instances
    num_standby_stores: int = 0  # 0 -> num_store_servers
    standby_instance_prefix: str = "10.5"
    standby_store_prefix: str = "10.6"
    standby_router_ip: str = "10.255.0.2"
    # asynchronous cross-site replication of the flow store (the
    # --no-replication ablation turns this off: the standby promotes
    # against an empty store and established flows cannot survive)
    replication: bool = True
    sync_interval: float = 0.05
    sync_rate: float = 400.0
    sync_burst: float = 80.0
    sync_op_timeout: float = 0.25  # must exceed the WAN round trip
    # slow-loris guard: kill flows that never complete their request
    # headers within this many seconds of the SYN (None = off)
    header_deadline: Optional[float] = None
    # compact stateless fast path (None = machinery absent; a default
    # StatelessConfig is armed but inert -- snapshots are built on every
    # push, dispatch unchanged; enabled=True flips the mux to O(1)
    # compact dispatch and the instances to no durable writes)
    stateless: Optional[StatelessConfig] = None
    # -- controller HA (0 = the historical singleton controller, built
    # exactly as before; N > 0 runs N leader-elected controller replicas
    # competing for a fenced lease in the store -- see core.leader) --
    num_controllers: int = 0
    lease_ttl: float = 1.5
    lease_settle: float = 0.25
    # how long a leader that cannot reach the lease store keeps acting
    # past its lease expiry (models a live partitioned old leader)
    stepdown_grace: float = 0.0
    controller_prefix: str = "10.8"

    def __post_init__(self) -> None:
        if self.hardening is not None:
            h = self.hardening
            self.monitor_interval = h.monitor_interval
            self.down_after = h.down_after
            self.up_after = h.up_after
            self.kv_op_timeout = h.kv_op_timeout
            self.kv_max_retries = h.kv_max_retries
            self.kv_dead_after_timeouts = h.kv_dead_after_timeouts
            self.kv_quarantine = h.kv_quarantine


class YodaService:
    """A fully wired YODA deployment."""

    def __init__(
        self,
        loop: EventLoop,
        network: Network,
        rng: SeededRng,
        config: Optional[YodaServiceConfig] = None,
    ):
        self.loop = loop
        self.network = network
        self.rng = rng
        self.config = config or YodaServiceConfig()
        cfg = self.config

        self.l4lb = L4LoadBalancer(
            loop, network, rng, num_muxes=cfg.num_muxes,
            mapping_propagation=cfg.mapping_propagation,
            router_ip=cfg.router_ip, router_name=cfg.router_name,
            site=cfg.site,
            stateless=cfg.stateless,
        )

        self.store_servers: List[MemcachedServer] = []
        for i in range(cfg.num_store_servers):
            host = network.attach(
                Host(f"{cfg.host_prefix}tcpstore-{i}",
                     [f"{cfg.store_prefix}.{cfg.subnet}.{i + 1}"],
                     site=cfg.site)
            )
            self.store_servers.append(MemcachedServer(host, loop))
        self.kv_cluster = MemcachedCluster(self.store_servers)

        self.instances: List[YodaInstance] = []
        self.repairers: List[FlowStateRepairer] = []
        for i in range(cfg.num_instances):
            self.instances.append(self._build_instance(i))
        self._next_instance_id = cfg.num_instances
        self._next_store_id = cfg.num_store_servers
        self.autoscalers: List = []  # armed by enable_elastic

        controller_kwargs = {}
        if cfg.qos is not None:
            controller_kwargs["drain_deadline"] = cfg.qos.drain_deadline
            controller_kwargs["drain_check_interval"] = cfg.qos.drain_check_interval
        # singleton controller (the historical default) is constructed in
        # exactly the same order as always; the replicated control plane
        # is built strictly after everything else exists
        self._controller: Optional[YodaController] = None
        self.replica_set: Optional[ControllerReplicaSet] = None
        self.controller_replicas: List[ControllerReplica] = []
        self.lease_cluster: Optional[MemcachedCluster] = None
        self.standby_region: Optional[StandbyRegion] = None
        if cfg.num_controllers == 0:
            self._controller = YodaController(
                loop, self.l4lb, self.instances, kv_cluster=self.kv_cluster,
                monitor_interval=cfg.monitor_interval,
                down_after=cfg.down_after, up_after=cfg.up_after,
                rng=self.rng, **controller_kwargs,
            )

        # multi-region: everything standby is built strictly after the
        # single-site deployment, so a 1-site run constructs exactly what
        # it always did
        self.standby_l4lb: Optional[L4LoadBalancer] = None
        self.standby_store_servers: List[MemcachedServer] = []
        self.standby_kv_cluster: Optional[MemcachedCluster] = None
        self.standby_instances: List[YodaInstance] = []
        self.replicator: Optional[SiteReplicator] = None
        if cfg.standby_site is not None:
            self._build_standby_region()

        if cfg.num_controllers > 0:
            self._build_controller_replicas(controller_kwargs)

    @property
    def controller(self) -> YodaController:
        """The controller operator commands go to: the singleton, or --
        replicated -- the acting leader's controller."""
        if self._controller is not None:
            return self._controller
        assert self.replica_set is not None
        return self.replica_set.leader_controller

    def _build_controller_replicas(self, controller_kwargs: Dict) -> None:
        """Construct N controller replicas, each a killable host with its
        own lease/journal store client and a cold ``YodaController`` over
        the shared data plane.  The lease cluster is a *union* membership
        view over every store server in the deployment (both sites when a
        standby exists), so leadership survives a region kill."""
        cfg = self.config
        lease_servers = list(self.store_servers) + list(self.standby_store_servers)
        self.lease_cluster = MemcachedCluster(lease_servers)
        self.replica_set = ControllerReplicaSet(self.loop, self.lease_cluster)
        # arm stale-leader fencing on every control-plane receiver
        self.l4lb.fence = FenceGate(self.l4lb.router.name)
        if self.standby_l4lb is not None:
            self.standby_l4lb.fence = FenceGate(self.standby_l4lb.router.name)
        for instance in [*self.instances, *self.standby_instances]:
            instance.fence = FenceGate(instance.name)
        sites = ([cfg.site] if cfg.standby_site is None
                 else [cfg.site, cfg.standby_site])
        for i in range(cfg.num_controllers):
            host = self.network.attach(Host(
                f"{cfg.host_prefix}ctl-{i}",
                [f"{cfg.controller_prefix}.{cfg.subnet}.{i + 1}"],
                site=sites[i % len(sites)],
            ))
            kv = ReplicatingKvClient(
                host, self.loop, self.lease_cluster,
                replicas=min(3, len(lease_servers)),
                op_timeout=cfg.kv_op_timeout, max_retries=1,
                dead_after_timeouts=cfg.kv_dead_after_timeouts,
                quarantine=cfg.kv_quarantine,
                rng=self.rng.fork(f"kv/{host.name}"),
                read_repair=False, hinted_handoff=False,
            )
            host.set_handler(kv.handle_response)
            controller = YodaController(
                self.loop, self.l4lb, self.instances,
                kv_cluster=self.kv_cluster,
                monitor_interval=cfg.monitor_interval,
                down_after=cfg.down_after, up_after=cfg.up_after,
                rng=self.rng, **controller_kwargs,
            )
            if self.standby_region is not None:
                controller.register_standby_region(self.standby_region)
            replica = ControllerReplica(host, self.loop, kv, controller,
                                        self.replica_set)
            # staggered first polls make replica 0 the deterministic first
            # claimant; later replicas read its live lease and follow
            elector = LeaderElector(
                host, self.loop, kv, self.lease_cluster,
                ttl=cfg.lease_ttl, settle=cfg.lease_settle,
                grace=cfg.stepdown_grace, start_delay=0.01 + 0.11 * i,
            )
            replica.attach_elector(elector)
            self.replica_set.add_replica(replica)
            self.controller_replicas.append(replica)
            elector.start()

    def _build_standby_region(self) -> None:
        """Construct the secondary site: its own L4 LB (router + muxes),
        store cluster and standby instances, plus -- unless ablated -- the
        cross-site replicator relay feeding it.  The controller
        orchestrates promotion when the primary region dies."""
        cfg = self.config
        site = cfg.standby_site
        self.standby_l4lb = L4LoadBalancer(
            self.loop, self.network, self.rng.fork("standby"),
            num_muxes=cfg.num_muxes,
            mapping_propagation=cfg.mapping_propagation,
            router_ip=cfg.standby_router_ip,
            router_name="l4-router-standby", site=site,
            stateless=cfg.stateless,
        )
        n_stores = cfg.num_standby_stores or cfg.num_store_servers
        for i in range(n_stores):
            host = self.network.attach(
                Host(f"tcpstore-s-{i}",
                     [f"{cfg.standby_store_prefix}.0.{i + 1}"], site=site)
            )
            self.standby_store_servers.append(MemcachedServer(host, self.loop))
        self.standby_kv_cluster = MemcachedCluster(self.standby_store_servers)
        if cfg.replication:
            # the relay lives in the PRIMARY site: shipped records pay the
            # real WAN latency, and a region kill takes the relay (and its
            # unshipped backlog) down with everything else
            relay = self.network.attach(
                Host(f"{cfg.host_prefix}sitesync-relay", ["10.7.0.1"],
                     site=cfg.site)
            )
            relay_kv = ReplicatingKvClient(
                relay, self.loop, self.standby_kv_cluster,
                replicas=cfg.store_replicas,
                op_timeout=cfg.sync_op_timeout,
                max_retries=cfg.kv_max_retries,
                dead_after_timeouts=cfg.kv_dead_after_timeouts,
                quarantine=cfg.kv_quarantine,
                rng=self.rng.fork("kv/sitesync-relay"),
                read_repair=False, hinted_handoff=False,
            )
            relay.set_handler(relay_kv.handle_response)
            self.replicator = SiteReplicator(
                self.loop, relay_kv, interval=cfg.sync_interval,
                rate=cfg.sync_rate, burst=cfg.sync_burst,
            )
            self.replicator.start()
            for instance in self.instances:
                instance.tcpstore.replicator = self.replicator
        n_inst = cfg.num_standby_instances or cfg.num_instances
        for i in range(n_inst):
            self.standby_instances.append(self._build_instance(
                i, name=f"yoda-s-{i}",
                ip=f"{cfg.standby_instance_prefix}.0.{i + 1}", site=site,
                cluster=self.standby_kv_cluster, l4lb=self.standby_l4lb,
            ))
        self.standby_region = StandbyRegion(
            site=site, l4lb=self.standby_l4lb,
            instances=self.standby_instances,
            kv_cluster=self.standby_kv_cluster,
            replicator=self.replicator,
        )
        if self._controller is not None:
            self._controller.register_standby_region(self.standby_region)

    def _build_instance(self, index: int, name: Optional[str] = None,
                        ip: Optional[str] = None, site: Optional[str] = None,
                        cluster: Optional[MemcachedCluster] = None,
                        l4lb: Optional[L4LoadBalancer] = None) -> YodaInstance:
        cfg = self.config
        host = self.network.attach(
            Host(name or f"{cfg.host_prefix}yoda-{index}",
                 [ip or f"{cfg.instance_prefix}.{cfg.subnet}.{index + 1}"],
                 site=site or cfg.site)
        )
        kv = ReplicatingKvClient(
            host, self.loop, cluster or self.kv_cluster,
            replicas=cfg.store_replicas,
            op_timeout=cfg.kv_op_timeout, max_retries=cfg.kv_max_retries,
            dead_after_timeouts=cfg.kv_dead_after_timeouts,
            quarantine=cfg.kv_quarantine,
            rng=self.rng.fork(f"kv/{host.name}"),
            read_repair=cfg.self_healing, hinted_handoff=cfg.self_healing,
        )
        instance = YodaInstance(
            host, self.loop, self.rng, TcpStore(kv),
            cost_model=cfg.cost_model, scan_cost_model=cfg.scan_cost_model,
            l4lb=l4lb or self.l4lb, qos_config=cfg.qos,
            header_deadline=cfg.header_deadline,
            stateless=(cfg.stateless.enabled if cfg.stateless is not None
                       else False),
        )
        if instance.qos is not None:
            # store latency feeds the AIMD limiter: kv degradation becomes
            # SYN-stage backpressure instead of a timeout storm
            kv.latency_listener = instance.qos.observe_kv
        if cfg.self_healing:
            repairer = FlowStateRepairer(
                self.loop, kv, instance.durable_records,
                interval=cfg.repair_interval, rate=cfg.repair_rate,
                burst=cfg.repair_burst,
            )
            repairer.start()
            self.repairers.append(repairer)
        return instance

    # -- convenience -----------------------------------------------------------
    def new_spare_instance(self) -> YodaInstance:
        """Provision an extra instance VM and hand it to the autoscaler."""
        instance = self._build_instance(self._next_instance_id)
        self._next_instance_id += 1
        self.instances.append(instance)  # it is a VM, even while idle
        if self.replica_set is not None:
            instance.fence = FenceGate(instance.name)
            self.replica_set.add_spare(instance)
        else:
            self.controller.add_spare(instance)
        return instance

    def new_spare_store(self) -> MemcachedServer:
        """Provision an extra TCPStore VM for store-replica scale-out.
        The caller (the autoscaler) adds it to the cluster; that
        membership-epoch bump is what triggers anti-entropy refill."""
        cfg = self.config
        i = self._next_store_id
        host = self.network.attach(
            Host(f"{cfg.host_prefix}tcpstore-{i}",
                 [f"{cfg.store_prefix}.{cfg.subnet}.{i + 1}"],
                 site=cfg.site)
        )
        self._next_store_id += 1
        server = MemcachedServer(host, self.loop)
        self.store_servers.append(server)
        return server

    def enable_elastic(self, policy, scraper=None) -> List:
        """Arm closed-loop elastic scaling (``repro.autoscale``).

        Under controller HA every replica gets its own engine with the
        same policy: the ``acting()`` gate means only the leader's ticks
        actuate, and a takeover restores the journaled cooldown clocks
        and event ledger so the loop resumes instead of restarting.
        """
        from repro.autoscale.engine import Autoscaler

        targets = ([self._controller] if self._controller is not None
                   else [r.controller for r in self.controller_replicas])
        self.autoscalers = []
        for ctl in targets:
            ctl.attach_autoscaler(Autoscaler(
                ctl, policy,
                spawn_instance=self.new_spare_instance,
                spawn_store=self.new_spare_store,
                scraper=scraper,
            ))
            self.autoscalers.append(ctl.autoscaler)
        return self.autoscalers

    def add_service(
        self,
        policy: VipPolicy,
        backends: Dict[str, BackendHttpServer],
        instance_names: Optional[List[str]] = None,
    ) -> None:
        """Onboard one online service (VIP + backends + rules).  With a
        replicated control plane this records operator intent in the
        replica set's registry; the first elected leader installs it."""
        if self.replica_set is not None:
            self.replica_set.add_vip(policy, backends, instance_names)
        else:
            self.controller.add_vip(policy, backends=backends,
                                    instance_names=instance_names)

    def instance_by_name(self, name: str) -> YodaInstance:
        # search the service's own roster first: an instance that drained
        # out (or was removed) leaves the controller's map but still
        # exists as a VM the tests and experiments can inspect
        for instance in self.instances:
            if instance.name == name:
                return instance
        return self.controller.instances[name]

    def settle(self, duration: float = 1.0) -> None:
        """Run the loop briefly so mappings/health state propagate."""
        self.loop.run_for(duration)
