"""One-call construction of a complete YODA deployment.

Wires up, in the testbed's shape (Section 7 setup): an L4 LB, N YODA
instance VMs, M Memcached (TCPStore) VMs with a shared cluster view, and
the controller.  Experiments and examples build on this instead of
hand-assembling hosts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.controller import YodaController
from repro.core.instance import YodaCostModel, YodaInstance
from repro.core.policy import VipPolicy
from repro.core.selector import ScanCostModel
from repro.core.tcpstore import TcpStore
from repro.http.server import BackendHttpServer
from repro.kvstore.client import MemcachedCluster, ReplicatingKvClient
from repro.kvstore.memcached import MemcachedServer
from repro.kvstore.repair import FlowStateRepairer
from repro.l4lb.service import L4LoadBalancer
from repro.net.host import Host
from repro.net.network import Network
from repro.qos.config import HardeningConfig, QosConfig
from repro.sim.events import EventLoop
from repro.sim.random import SeededRng


@dataclass
class YodaServiceConfig:
    """Deployment sizing knobs (defaults mirror the paper's testbed)."""

    num_instances: int = 10
    num_store_servers: int = 10
    num_muxes: int = 4
    store_replicas: int = 2
    mapping_propagation: float = 0.2
    monitor_interval: float = 0.6
    down_after: int = 2  # consecutive failed probes to mark down
    up_after: int = 2  # consecutive good probes to mark up
    kv_op_timeout: float = 0.1
    kv_max_retries: int = 2
    kv_dead_after_timeouts: int = 3
    kv_quarantine: float = 1.0
    # self-healing store: read-repair + hinted handoff in the clients and
    # an anti-entropy sweeper per instance.  Off = the paper's client-side
    # replication exactly as published (the durability ablation).
    self_healing: bool = True
    repair_interval: float = 0.2
    repair_rate: float = 200.0  # keys re-replicated per second, per instance
    repair_burst: float = 40.0
    cost_model: YodaCostModel = field(default_factory=YodaCostModel)
    scan_cost_model: ScanCostModel = field(default_factory=ScanCostModel)
    instance_prefix: str = "10.1"
    store_prefix: str = "10.2"
    # overload-control plane (None = not constructed; a default QosConfig
    # is armed but neutral -- it never sheds, breaks or limits)
    qos: Optional[QosConfig] = None
    # one bundle overriding the scattered hardening knobs above, for
    # sweeps/ablations; defaults equal the historical constants exactly
    hardening: Optional[HardeningConfig] = None

    def __post_init__(self) -> None:
        if self.hardening is not None:
            h = self.hardening
            self.monitor_interval = h.monitor_interval
            self.down_after = h.down_after
            self.up_after = h.up_after
            self.kv_op_timeout = h.kv_op_timeout
            self.kv_max_retries = h.kv_max_retries
            self.kv_dead_after_timeouts = h.kv_dead_after_timeouts
            self.kv_quarantine = h.kv_quarantine


class YodaService:
    """A fully wired YODA deployment."""

    def __init__(
        self,
        loop: EventLoop,
        network: Network,
        rng: SeededRng,
        config: Optional[YodaServiceConfig] = None,
    ):
        self.loop = loop
        self.network = network
        self.rng = rng
        self.config = config or YodaServiceConfig()
        cfg = self.config

        self.l4lb = L4LoadBalancer(
            loop, network, rng, num_muxes=cfg.num_muxes,
            mapping_propagation=cfg.mapping_propagation,
        )

        self.store_servers: List[MemcachedServer] = []
        for i in range(cfg.num_store_servers):
            host = network.attach(
                Host(f"tcpstore-{i}", [f"{cfg.store_prefix}.0.{i + 1}"], site="dc")
            )
            self.store_servers.append(MemcachedServer(host, loop))
        self.kv_cluster = MemcachedCluster(self.store_servers)

        self.instances: List[YodaInstance] = []
        self.repairers: List[FlowStateRepairer] = []
        for i in range(cfg.num_instances):
            self.instances.append(self._build_instance(i))
        self._next_instance_id = cfg.num_instances

        controller_kwargs = {}
        if cfg.qos is not None:
            controller_kwargs["drain_deadline"] = cfg.qos.drain_deadline
            controller_kwargs["drain_check_interval"] = cfg.qos.drain_check_interval
        self.controller = YodaController(
            loop, self.l4lb, self.instances, kv_cluster=self.kv_cluster,
            monitor_interval=cfg.monitor_interval,
            down_after=cfg.down_after, up_after=cfg.up_after,
            rng=self.rng, **controller_kwargs,
        )

    def _build_instance(self, index: int) -> YodaInstance:
        cfg = self.config
        host = self.network.attach(
            Host(f"yoda-{index}", [f"{cfg.instance_prefix}.0.{index + 1}"], site="dc")
        )
        kv = ReplicatingKvClient(
            host, self.loop, self.kv_cluster, replicas=cfg.store_replicas,
            op_timeout=cfg.kv_op_timeout, max_retries=cfg.kv_max_retries,
            dead_after_timeouts=cfg.kv_dead_after_timeouts,
            quarantine=cfg.kv_quarantine,
            rng=self.rng.fork(f"kv/{host.name}"),
            read_repair=cfg.self_healing, hinted_handoff=cfg.self_healing,
        )
        instance = YodaInstance(
            host, self.loop, self.rng, TcpStore(kv),
            cost_model=cfg.cost_model, scan_cost_model=cfg.scan_cost_model,
            l4lb=self.l4lb, qos_config=cfg.qos,
        )
        if instance.qos is not None:
            # store latency feeds the AIMD limiter: kv degradation becomes
            # SYN-stage backpressure instead of a timeout storm
            kv.latency_listener = instance.qos.observe_kv
        if cfg.self_healing:
            repairer = FlowStateRepairer(
                self.loop, kv, instance.durable_records,
                interval=cfg.repair_interval, rate=cfg.repair_rate,
                burst=cfg.repair_burst,
            )
            repairer.start()
            self.repairers.append(repairer)
        return instance

    # -- convenience -----------------------------------------------------------
    def new_spare_instance(self) -> YodaInstance:
        """Provision an extra instance VM and hand it to the autoscaler."""
        instance = self._build_instance(self._next_instance_id)
        self._next_instance_id += 1
        self.controller.add_spare(instance)
        return instance

    def add_service(
        self,
        policy: VipPolicy,
        backends: Dict[str, BackendHttpServer],
        instance_names: Optional[List[str]] = None,
    ) -> None:
        """Onboard one online service (VIP + backends + rules)."""
        self.controller.add_vip(policy, backends=backends,
                                instance_names=instance_names)

    def instance_by_name(self, name: str) -> YodaInstance:
        return self.controller.instances[name]

    def settle(self, duration: float = 1.0) -> None:
        """Run the loop briefly so mappings/health state propagate."""
        self.loop.run_for(duration)
