"""User-facing policy construction (paper Section 5.1).

Online service operators express *policies*; these helpers compile the
common patterns from Table 3 into :class:`~repro.core.rules.Rule` objects:
weighted split, primary-backup, sticky sessions and least-loaded.  A
:class:`VipPolicy` bundles a VIP's rules with its backend registry and is
versioned so instances apply updates only to new connections (Section 5.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.rules import LEAST_LOADED, Action, Match, Rule
from repro.errors import PolicyError
from repro.http.tls import Certificate
from repro.net.addresses import Endpoint


def weighted_split(name: str, url: str, weights: Dict[str, float],
                   priority: int = 1) -> Rule:
    """Split matching traffic across backends by weight (Table 3, rule 1)."""
    return Rule(name, priority, Match(url=url), Action(split=dict(weights)))


def primary_backup(name: str, url: str, primaries: Dict[str, float],
                   backups: Dict[str, float], priority: int = 2) -> List[Rule]:
    """Prefer primaries; fall to backups when every primary is down
    (Table 3, rules 2-3: same match, two priorities)."""
    return [
        Rule(f"{name}-primary", priority, Match(url=url), Action(split=dict(primaries))),
        Rule(f"{name}-backup", priority - 1, Match(url=url), Action(split=dict(backups))),
    ]


def sticky_sessions(name: str, cookie: str, members: Sequence[str],
                    priority: int = 0, url: Optional[str] = None) -> Rule:
    """Pin each session cookie to one backend (Table 3, rule 4)."""
    return Rule(
        name, priority,
        Match(url=url, cookie=cookie),
        Action(table=cookie, table_members=tuple(members)),
    )


def least_loaded(name: str, url: str, members: Sequence[str],
                 priority: int = 1) -> Rule:
    """Send matching traffic to the least-loaded backend (weights all -1)."""
    return Rule(
        name, priority, Match(url=url),
        Action(split={m: LEAST_LOADED for m in members}),
    )


@dataclass
class VipPolicy:
    """Everything YODA knows about one online service (VIP).

    Attributes:
        vip: the virtual IP string.
        port: service port.
        backends: backend name -> endpoint.
        rules: the L7 rules for this VIP.
        version: bumped on every policy update; instances tag each flow
            with the version it was classified under, so updates never
            touch existing connections.
    """

    vip: str
    backends: Dict[str, Endpoint]
    rules: List[Rule]
    port: int = 80
    version: int = 1
    # SSL termination (Section 5.2): when set, YODA instances serve this
    # certificate and decrypt request headers for rule matching
    certificate: Optional[Certificate] = None
    # TLS session resumption: instances issue deterministic tickets (kept
    # in the flow store) and accept abbreviated handshakes against them;
    # backends must be configured to mirror the same behaviour
    session_tickets: bool = False

    def __post_init__(self) -> None:
        self.validate()

    @property
    def vip_endpoint(self) -> Endpoint:
        return Endpoint(self.vip, self.port)

    @property
    def rule_count(self) -> int:
        return len(self.rules)

    def validate(self) -> None:
        """Every rule's backends must exist in the registry."""
        for rule in self.rules:
            for backend in rule.action.backends():
                if backend not in self.backends:
                    raise PolicyError(
                        f"rule {rule.name!r} references unknown backend "
                        f"{backend!r} (VIP {self.vip})"
                    )

    def updated(self, rules: Optional[List[Rule]] = None,
                backends: Optional[Dict[str, Endpoint]] = None) -> "VipPolicy":
        """A new version with replaced rules and/or backends."""
        return VipPolicy(
            vip=self.vip,
            port=self.port,
            backends=dict(backends if backends is not None else self.backends),
            rules=list(rules if rules is not None else self.rules),
            version=self.version + 1,
            certificate=self.certificate,
            session_tickets=self.session_tickets,
        )

    def endpoint_of(self, backend: str) -> Endpoint:
        try:
            return self.backends[backend]
        except KeyError:
            raise PolicyError(f"unknown backend {backend!r} for VIP {self.vip}") from None
