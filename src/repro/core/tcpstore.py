"""TCPStore: the flow-state facade over the replicating Memcached client.

Implements the storage protocol of Figure 3:

- ``storage-a``: persist the client SYN information *before* the SYN-ACK
  goes out.
- ``storage-b``: persist the server connection (backend, SNAT port, server
  ISN) *before* ACKing the server's SYN-ACK; also writes a server-side
  index entry so return traffic rerouted after a failure can find the flow.

The guiding invariant (Section 4.2): every packet a YODA instance ACKs is
in TCPStore first, so no acknowledged information can be lost.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.core.flowstate import FlowState, client_key, server_key
from repro.kvstore.client import KvOpResult, ReplicatingKvClient
from repro.net.addresses import Endpoint


class TcpStore:
    """One instance's handle on the shared flow-state store."""

    def __init__(self, kv: ReplicatingKvClient):
        self.kv = kv
        self.storage_a_ops = 0
        self.storage_b_ops = 0

    # -- writes ----------------------------------------------------------------
    def store_client_syn(self, state: FlowState,
                         on_done: Callable[[bool], None]) -> None:
        """storage-a: one set, completing before the SYN-ACK is sent."""
        self.storage_a_ops += 1
        self.kv.set(state.storage_key(), state.to_bytes(),
                    lambda r: on_done(r.ok))

    def store_server_conn(self, state: FlowState,
                          on_done: Callable[[bool], None]) -> None:
        """storage-b: update the client record and write the server-side
        index, in parallel; completes when both ack (before the ACK to the
        server is released)."""
        skey = state.server_storage_key()
        if skey is None:
            raise ValueError("store_server_conn() before a server was selected")
        self.storage_b_ops += 1
        outcome = {"pending": 2, "ok": True}

        def _one(result: KvOpResult) -> None:
            outcome["pending"] -= 1
            outcome["ok"] = outcome["ok"] and result.ok
            if outcome["pending"] == 0:
                on_done(outcome["ok"])

        payload = state.to_bytes()
        self.kv.set(state.storage_key(), payload, _one)
        self.kv.set(skey, payload, _one)

    # -- reads (only on the recovery path) ----------------------------------------
    def get_by_client(self, client: Endpoint, vip: Endpoint,
                      on_done: Callable[[Optional[FlowState]], None]) -> None:
        self.kv.get(client_key(client, vip), lambda r: on_done(self._decode(r)))

    def get_by_server(self, vip_ip: str, snat_port: int, server: Endpoint,
                      on_done: Callable[[Optional[FlowState]], None]) -> None:
        self.kv.get(server_key(vip_ip, snat_port, server),
                    lambda r: on_done(self._decode(r)))

    # -- removal (on FIN-ACK, Section 4.1) -------------------------------------------
    def remove(self, state: FlowState) -> None:
        self.kv.delete(state.storage_key())
        skey = state.server_storage_key()
        if skey is not None:
            self.kv.delete(skey)

    def remove_server_index(self, state: FlowState) -> None:
        """Drop only the server-side index entry (used when an HTTP/1.1
        backend switch retires the old server connection)."""
        skey = state.server_storage_key()
        if skey is not None:
            self.kv.delete(skey)

    @staticmethod
    def _decode(result: KvOpResult) -> Optional[FlowState]:
        if not result.ok or result.value is None:
            return None
        return FlowState.from_bytes(result.value)
