"""TCPStore: the flow-state facade over the replicating Memcached client.

Implements the storage protocol of Figure 3:

- ``storage-a``: persist the client SYN information *before* the SYN-ACK
  goes out.
- ``storage-b``: persist the server connection (backend, SNAT port, server
  ISN) *before* ACKing the server's SYN-ACK; also writes a server-side
  index entry so return traffic rerouted after a failure can find the flow.

The guiding invariant (Section 4.2): every packet a YODA instance ACKs is
in TCPStore first, so no acknowledged information can be lost.

Every write is stamped with a ``(monotonic_version, writer_id)`` version so
replicas that diverge (a server recovering empty, a replica set that moved
while a server was out) can be reconciled newest-wins by the client
library.  The counter is per key; when a flow migrates, the adopting
instance resumes counting above the version its recovery read returned, so
its updates out-version the crashed writer's records everywhere.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.core.flowstate import FlowState, client_key, server_key
from repro.kvstore.client import KvOpResult, ReplicatingKvClient
from repro.kvstore.memcached import Version
from repro.net.addresses import Endpoint


class VersionLedger:
    """Per-key version stamping for one writer: the write discipline every
    store-backed record in the system shares (flow records here, and the
    controller's lease/journal records in ``core.leader``).

    ``stamp`` mints the next ``(counter, writer_id)`` version for a key;
    ``adopt`` folds in a version another writer produced (recovery reads,
    ``superseded_by`` refusals) so the next stamp out-versions it on every
    replica.
    """

    def __init__(self, writer_id: str):
        self.writer_id = writer_id
        self._versions: Dict[str, Version] = {}

    def stamp(self, key: str) -> Version:
        held = self._versions.get(key)
        version = ((held[0] if held else 0) + 1, self.writer_id)
        self._versions[key] = version
        return version

    def adopt(self, key: str, version: Optional[Version]) -> None:
        if version is None:
            return
        held = self._versions.get(key)
        if held is None or tuple(version) > tuple(held):
            self._versions[key] = tuple(version)

    def version_of(self, key: str) -> Optional[Version]:
        return self._versions.get(key)

    def pop(self, key: str) -> Optional[Version]:
        """Forget a key's counter, returning the last stamped version
        (what a compare-and-delete pins to)."""
        return self._versions.pop(key, None)


class TcpStore:
    """One instance's handle on the shared flow-state store."""

    def __init__(self, kv: ReplicatingKvClient, writer_id: Optional[str] = None,
                 replicator=None):
        self.kv = kv
        self.writer_id = writer_id or kv.host.name
        # optional cross-site shipper (kvstore.sitesync.SiteReplicator):
        # acked writes and teardowns are mirrored to the secondary site.
        # None (the single-site default) leaves every path untouched.
        self.replicator = replicator
        self.storage_a_ops = 0
        self.storage_b_ops = 0
        # per-key: the version of the newest record we wrote or read; the
        # next write for the key is stamped one above its counter
        self._ledger = VersionLedger(self.writer_id)

    # -- versioning ------------------------------------------------------------
    def _stamp(self, key: str) -> Version:
        return self._ledger.stamp(key)

    def _adopt_version(self, key: str, version: Optional[Version]) -> None:
        """Record the version a recovery read returned, so our next write
        for the key supersedes it on every replica."""
        self._ledger.adopt(key, version)

    def version_of(self, key: str) -> Optional[Version]:
        """The version of the newest record known for ``key`` (what the
        anti-entropy sweeper re-replicates at)."""
        return self._ledger.version_of(key)

    def owned_records(self, state: FlowState) -> List[Tuple[str, bytes, Optional[Version]]]:
        """The (key, payload, version) tuples that re-create this flow's
        durable records -- the sweeper's unit of repair."""
        payload = state.to_bytes()
        out = [(state.storage_key(), payload,
                self.version_of(state.storage_key()))]
        skey = state.server_storage_key()
        if skey is not None:
            out.append((skey, payload, self.version_of(skey)))
        return out

    # -- writes ----------------------------------------------------------------
    MAX_REWRITE_ROUNDS = 3

    def _write(self, key: str, payload: bytes,
               on_done: Callable[[bool], None],
               rounds: int = MAX_REWRITE_ROUNDS) -> None:
        """One versioned set, with supersession convergence: ephemeral
        ports recycle, so a brand-new flow can reuse the key of a dead one
        whose orphaned record (left on an ex-replica by a delete that ran
        against a shrunken ring) carries a higher version and silently
        wins newest-wins.  When a replica refuses our write and reports
        the version it kept, adopt it, re-stamp above it, and write again
        -- the live flow must out-version the ghost before we acknowledge
        anything that depends on this record being durable."""

        version = self._stamp(key)

        def _cb(result: KvOpResult) -> None:
            if result.superseded_by is not None and rounds > 1:
                self._adopt_version(key, result.superseded_by)
                self._write(key, payload, on_done, rounds - 1)
                return
            if result.ok and self.replicator is not None:
                # ship at the version that actually won locally, so the
                # secondary's copy reconciles newest-wins identically
                self.replicator.note(key, payload, version)
            on_done(result.ok)

        self.kv.set(key, payload, _cb, version=version)

    def store_client_syn(self, state: FlowState,
                         on_done: Callable[[bool], None]) -> None:
        """storage-a: one set, completing before the SYN-ACK is sent."""
        self.storage_a_ops += 1
        self._write(state.storage_key(), state.to_bytes(), on_done)

    def store_server_conn(self, state: FlowState,
                          on_done: Callable[[bool], None]) -> None:
        """storage-b: update the client record and write the server-side
        index, in parallel; completes when both ack (before the ACK to the
        server is released)."""
        skey = state.server_storage_key()
        if skey is None:
            raise ValueError("store_server_conn() before a server was selected")
        self.storage_b_ops += 1
        outcome = {"pending": 2, "ok": True}

        def _one(ok: bool) -> None:
            outcome["pending"] -= 1
            outcome["ok"] = outcome["ok"] and ok
            if outcome["pending"] == 0:
                on_done(outcome["ok"])

        payload = state.to_bytes()
        self._write(state.storage_key(), payload, _one)
        self._write(skey, payload, _one)

    def checkpoint(self, state: FlowState,
                   on_done: Optional[Callable[[bool], None]] = None) -> None:
        """Re-persist both records mid-flow.  Long-lived (streaming) flows
        call this as their delivered-bytes watermark advances, so a flow
        resumed after an instance -- or region -- failure knows how much of
        the response the client already holds."""
        cb = on_done or (lambda ok: None)
        payload = state.to_bytes()
        self._write(state.storage_key(), payload, cb)
        skey = state.server_storage_key()
        if skey is not None:
            self._write(skey, payload, cb)

    # -- TLS session tickets (stored alongside flow state, same replication) --
    @staticmethod
    def ticket_storage_key(ticket: str) -> str:
        return f"yoda:tkt:{ticket}"

    def put_ticket(self, ticket: str, sni: str,
                   on_done: Optional[Callable[[bool], None]] = None) -> None:
        """Persist an issued TLS session ticket.  Riding ``_write`` gives
        it version stamping and -- when a replicator is wired -- cross-site
        shipping, so resumption survives instance *and* region failover."""
        self._write(self.ticket_storage_key(ticket), sni.encode(),
                    on_done or (lambda ok: None))

    def get_ticket(self, ticket: str,
                   on_done: Callable[[Optional[bytes]], None]) -> None:
        key = self.ticket_storage_key(ticket)

        def _cb(result: KvOpResult) -> None:
            if not result.ok or result.value is None:
                on_done(None)
                return
            self._adopt_version(key, result.version)
            on_done(result.value)

        self.kv.get(key, _cb)

    # -- reads (only on the recovery path) ----------------------------------------
    def get_by_client(self, client: Endpoint, vip: Endpoint,
                      on_done: Callable[[Optional[FlowState]], None]) -> None:
        key = client_key(client, vip)
        self.kv.get(key, lambda r: on_done(self._decode(key, r)))

    def get_by_server(self, vip_ip: str, snat_port: int, server: Endpoint,
                      on_done: Callable[[Optional[FlowState]], None]) -> None:
        key = server_key(vip_ip, snat_port, server)
        self.kv.get(key, lambda r: on_done(self._decode(key, r)))

    # -- removal (on FIN-ACK, Section 4.1) -------------------------------------------
    def remove(self, state: FlowState) -> None:
        """Delete both records, each pinned to the version we last stamped
        (compare-and-delete).  A flow can linger server-side past the
        client's TIME_WAIT, so by the time this teardown runs the storage
        key may already belong to a new incarnation of the recycled
        4-tuple -- possibly on another instance after an LB membership
        change.  Pinning the delete to *our* version means we only ever
        destroy our own records."""
        key = state.storage_key()
        version = self._ledger.pop(key)
        self.kv.delete(key, version=version)
        if self.replicator is not None:
            self.replicator.note_delete(key, version)
        skey = state.server_storage_key()
        if skey is not None:
            sversion = self._ledger.pop(skey)
            self.kv.delete(skey, version=sversion)
            if self.replicator is not None:
                self.replicator.note_delete(skey, sversion)

    def remove_server_index(self, state: FlowState) -> None:
        """Drop only the server-side index entry (used when an HTTP/1.1
        backend switch retires the old server connection)."""
        skey = state.server_storage_key()
        if skey is not None:
            sversion = self._ledger.pop(skey)
            self.kv.delete(skey, version=sversion)
            if self.replicator is not None:
                self.replicator.note_delete(skey, sversion)

    def _decode(self, key: str, result: KvOpResult) -> Optional[FlowState]:
        if not result.ok or result.value is None:
            return None
        self._adopt_version(key, result.version)
        return FlowState.from_bytes(result.value)
