"""The YODA controller (paper Section 6, Figure 8).

Four roles, as in the paper:

- **User interface**: converts operator policies into rules and installs
  them on the instances a VIP is assigned to (only new connections see new
  versions).
- **Assignment updater**: pushes VIP-to-instance mappings into the L4 LB.
- **Monitor**: pings YODA instances, Memcached servers and backends every
  600 ms; a failure is therefore detected with at most 600 ms delay --
  the failover clock visible in Figure 12(b).
- **Scaling**: watches instance CPU and activates spare instances
  (Figure 13); addition/removal never breaks flows because flows migrate
  through TCPStore.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set

from repro.core.instance import YodaInstance
from repro.core.policy import VipPolicy
from repro.errors import ControllerError, StaleLeaderEpoch
from repro.http.server import BackendHttpServer
from repro.kvstore.client import MemcachedCluster
from repro.kvstore.sitesync import SiteReplicator
from repro.l4lb.service import L4LoadBalancer
from repro.obs import OBS
from repro.qos.drain import DrainCoordinator, DrainState, DrainStatus
from repro.sim.events import EventLoop
from repro.sim.metrics import MetricRegistry
from repro.sim.process import PeriodicTask
from repro.sim.random import SeededRng

MONITOR_INTERVAL = 0.6
DOWN_AFTER_PROBES = 2  # consecutive failed probes before marking down
UP_AFTER_PROBES = 2  # consecutive good probes before marking up again
DRAIN_DEADLINE = 10.0  # forced TCPStore handoff after this long draining
DRAIN_CHECK_INTERVAL = 0.25


class ControllerHealthView:
    """The health view the selectors consult, with up/down hysteresis.

    Reflects *monitor-detected* state, not instantaneous truth: a backend
    that just died is still selected until enough ping rounds agree.  A
    single dropped probe must not flap a healthy target out of rotation,
    so a transition needs ``down_after`` consecutive failed probes (and,
    symmetrically, ``up_after`` consecutive successes to come back).
    Unknown targets default to healthy, as before.
    """

    def __init__(self, down_after: int = DOWN_AFTER_PROBES,
                 up_after: int = UP_AFTER_PROBES) -> None:
        if down_after < 1 or up_after < 1:
            raise ValueError("hysteresis thresholds must be >= 1")
        self.down_after = down_after
        self.up_after = up_after
        self._healthy: Dict[str, bool] = {}
        self._load: Dict[str, float] = {}
        self._fail_streak: Dict[str, int] = {}
        self._ok_streak: Dict[str, int] = {}

    def is_healthy(self, backend: str) -> bool:
        return self._healthy.get(backend, True)

    def load(self, backend: str) -> float:
        return self._load.get(backend, 0.0)

    def observe(self, backend: str, ok: bool,
                load: Optional[float] = None) -> bool:
        """Feed one probe result; returns the (hysteresis-filtered) verdict."""
        if ok:
            self._fail_streak[backend] = 0
            streak = self._ok_streak.get(backend, 0) + 1
            self._ok_streak[backend] = streak
            if not self._healthy.get(backend, True) and streak >= self.up_after:
                self._healthy[backend] = True
            if load is not None:
                self._load[backend] = load
        else:
            self._ok_streak[backend] = 0
            streak = self._fail_streak.get(backend, 0) + 1
            self._fail_streak[backend] = streak
            if self._healthy.get(backend, True) and streak >= self.down_after:
                self._healthy[backend] = False
        return self._healthy.get(backend, True)

    def update(self, backend: str, healthy: bool, load: float) -> None:
        """Force-set state, bypassing hysteresis (operator override)."""
        self._healthy[backend] = healthy
        self._load[backend] = load
        self._fail_streak[backend] = 0
        self._ok_streak[backend] = 0

    def forget(self, backend: str) -> None:
        self._healthy.pop(backend, None)
        self._load.pop(backend, None)
        self._fail_streak.pop(backend, None)
        self._ok_streak.pop(backend, None)

    def assume(self, backend: str, healthy: bool) -> None:
        """Seed a verdict without hysteresis: a newly elected controller
        bootstraps its view from current truth so the first monitor round
        after a takeover cannot re-admit a dead target (the hysteresis
        default for unknown targets is healthy)."""
        self._healthy[backend] = healthy
        self._fail_streak[backend] = 0
        self._ok_streak[backend] = 0


@dataclass
class StandbyRegion:
    """A fully built but idle secondary region, registered for failover.

    The standby's instances serve no VIP and its store cluster holds only
    asynchronously replicated copies until :meth:`YodaController._fail_over_region`
    promotes it.
    """

    site: str
    l4lb: L4LoadBalancer
    instances: List[YodaInstance]
    kv_cluster: Optional[MemcachedCluster] = None
    replicator: Optional[SiteReplicator] = None


@dataclass
class AutoscaleConfig:
    """Scale-out policy for Figure 13."""

    high_watermark: float = 0.70  # add instances above this average CPU
    low_watermark: float = 0.25  # (optional) release spares below this
    target: float = 0.55  # size so average CPU lands here
    check_interval: float = 5.0
    scale_down: bool = False
    # scale in by draining (make-before-break) instead of the legacy
    # instant removal that relies on TCPStore failover for every flow
    drain: bool = False


class YodaController:
    """Central control plane for one YODA deployment."""

    def __init__(
        self,
        loop: EventLoop,
        l4lb: L4LoadBalancer,
        instances: Sequence[YodaInstance],
        kv_cluster: Optional[MemcachedCluster] = None,
        monitor_interval: float = MONITOR_INTERVAL,
        down_after: int = DOWN_AFTER_PROBES,
        up_after: int = UP_AFTER_PROBES,
        rng: Optional[SeededRng] = None,
        drain_deadline: float = DRAIN_DEADLINE,
        drain_check_interval: float = DRAIN_CHECK_INTERVAL,
    ):
        self.loop = loop
        self.l4lb = l4lb
        self.kv_cluster = kv_cluster
        self.instances: Dict[str, YodaInstance] = {}
        self.active: Dict[str, bool] = {}  # participating in mappings
        self.spares: List[YodaInstance] = []
        self.backends: Dict[str, BackendHttpServer] = {}
        self.policies: Dict[str, VipPolicy] = {}
        self.assignments: Dict[str, List[str]] = {}  # vip -> instance names
        self.health_view = ControllerHealthView(down_after, up_after)
        self.metrics = MetricRegistry("controller")
        self._instance_alive: Dict[str, bool] = {}
        self._instance_health = ControllerHealthView(down_after, up_after)
        self._kv_health = ControllerHealthView(down_after, up_after)
        # closed-loop elastic scaling (repro.autoscale); None until armed
        # via enable_autoscaling (legacy preset) or attach_autoscaler
        self.autoscaler = None
        self.draining: Set[str] = set()
        self.drain_deadline = drain_deadline
        self.drain_check_interval = drain_check_interval
        self._drainer: Optional[DrainCoordinator] = None
        self.traffic_stats: Dict[str, int] = {}
        # Probes can themselves be lost (chaos scenarios raise this); the
        # rng is only consulted when the rate is nonzero, so healthy runs
        # keep bit-identical schedules with or without the parameter.
        self.probe_loss_rate = 0.0
        self._probe_rng = (rng or SeededRng(0)).fork("probes")
        # multi-region: a registered (idle) secondary region, and whether
        # the one-shot promotion has happened
        self._standby: Optional[StandbyRegion] = None
        self.failed_over = False
        self.failover_at: Optional[float] = None
        self.failover_records_lost = 0
        # compact stateless dispatch: latest table version each mapping
        # push carried (empty when the L4 LB has no stateless machinery).
        # Journaled so a takeover knows the floor its fencing re-push
        # must move past -- a successor may never regress a VIP's table.
        self.compact_versions: Dict[str, int] = {}
        # controller HA (core.leader): all None/identity in the
        # single-controller configuration, where this controller always
        # acts, never journals, and pushes token-free control calls.
        # ControllerReplica wires these when the control plane replicates.
        self.token = None            # LeaderToken while acting leader
        self.acting_fn = None        # replica's "may I act?" gate
        self.journal = None          # ControlJournal (durable state)
        self.on_fenced = None        # step-down hook on a rejected push

        if self.kv_cluster is not None:
            # account every store-membership transition (epoch bumps feed
            # the per-instance anti-entropy sweepers)
            self.kv_cluster.add_listener(self._on_kv_membership)

        for instance in instances:
            self._adopt(instance)
        # Probe faster than the advertised detection budget: ``down_after``
        # consecutive failed probes fit inside one monitor_interval, so the
        # paper's 600 ms worst-case detection clock still holds.
        self.monitor_interval = monitor_interval
        probe_interval = monitor_interval / max(1, down_after)
        self._monitor = PeriodicTask(loop, probe_interval, self._monitor_tick)
        self._monitor.start()

    # ------------------------------------------------------------ leadership --
    def acting(self) -> bool:
        """May this controller mutate the data plane right now?  Always
        true in the single-controller configuration; under HA, only while
        this replica holds the lease and has finished journal replay."""
        return self.acting_fn is None or self.acting_fn()

    def halt(self) -> None:
        """Stop every periodic activity (the controller process died)."""
        self._monitor.stop()
        if self.autoscaler is not None:
            self.autoscaler.stop()
        if self._drainer is not None:
            self._drainer.halt()

    def resume_monitoring(self) -> None:
        """Restart periodic activity after a crash-recovery.  Drains are
        NOT resumed here: if this replica is re-elected it replays them
        from the journal; if another replica leads, they are not ours."""
        if not self._monitor.running:
            self._monitor.start()
        if self.autoscaler is not None and not self.autoscaler.running:
            self.autoscaler.start()

    def journal_sync(self) -> None:
        """Persist the control-plane state after a mutation (leaders
        only; free in the single-controller configuration)."""
        if self.journal is None or self.token is None:
            return
        token = self.token

        def _done(ok: bool, superseded: bool) -> None:
            if superseded and self.token is token and self.on_fenced is not None:
                # a newer leader owns the journal: the store itself just
                # fenced us out; surface it like any rejected push
                self.on_fenced(StaleLeaderEpoch(
                    "yoda:ctl:journal", "journal_write", token.epoch,
                    token.holder, token.epoch + 1, "a newer leader"))

        self.journal.write(self._journal_state(), _done)

    def _journal_state(self) -> Dict:
        """The JSON snapshot a successor replays: operator progress, not
        operator intent (intent lives in the replica set's registry)."""
        drains = {}
        if self._drainer is not None:
            for name, st in self._drainer.drains.items():
                if not st.done:
                    drains[name] = {
                        "started_at": st.started_at,
                        "deadline_at": st.deadline_at,
                        "flows_at_start": st.flows_at_start,
                        "to_spare": st.to_spare,
                    }
        counters = {}
        for key in ("drains_started", "drains_completed", "drains_forced",
                    "scaled_up", "scaled_down", "region_failovers",
                    "instances_added", "instances_removed"):
            if key in self.metrics.counters:
                counters[key] = self.metrics.counters[key].value
        state = {
            "epoch": self.token.epoch if self.token is not None else -1,
            "holder": self.token.holder if self.token is not None else "",
            "assignments": {vip: list(names)
                            for vip, names in self.assignments.items()},
            "active": {n: bool(v) for n, v in self.active.items()},
            "draining": drains,
            "spares": sorted(s.name for s in self.spares),
            "failed_over": self.failed_over,
            "failover_at": self.failover_at,
            "failover_records_lost": self.failover_records_lost,
            "compact_versions": dict(self.compact_versions),
            "counters": counters,
        }
        if self.autoscaler is not None:
            # cooldown clocks + event-ledger tail: a successor's engine
            # resumes mid-flight scale events instead of re-deciding cold
            state["autoscale"] = self.autoscaler.journal_state()
        return state

    def take_over(self, token, state: Optional[Dict], registry) -> None:
        """Become the acting leader: hydrate from operator intent
        (``registry``) plus the previous leader's journal (``state``),
        then re-push everything with our lease epoch -- the re-push is
        what fences the data plane against the old leader.

        Mid-flight work is *resumed*, not restarted: drains keep their
        original absolute deadlines, and a completed region failover is
        adopted (the standby stays promoted) rather than re-promoted.
        """
        self.token = token
        prev = state or {}
        # 0. region failover the old leader already performed: adopt it
        if prev.get("failed_over") and not self.failed_over \
                and self._standby is not None:
            standby = self._standby
            if standby.replicator is not None:
                if standby.replicator.promoted:
                    self.failover_records_lost = prev.get(
                        "failover_records_lost", 0)
                else:
                    self.failover_records_lost = standby.replicator.promote()
            if standby.kv_cluster is not None:
                self.kv_cluster = standby.kv_cluster
                standby.kv_cluster.add_listener(self._on_kv_membership)
            self.l4lb = standby.l4lb
            for instance in standby.instances:
                if instance.name not in self.instances:
                    self._adopt(instance)
            self.failed_over = True
            self.failover_at = prev.get("failover_at")
        # 1. operator intent: every service the operator declared exists
        for policy, backends, instance_names in list(registry.services.values()):
            if policy.vip not in self.policies:
                self.policies[policy.vip] = policy
                if backends:
                    self.backends.update(backends)
                names = [n for n in (instance_names or list(self.instances))
                         if n in self.instances]
                self.assignments[policy.vip] = names
        for name, spare in registry.spare_pool.items():
            if name not in self.instances \
                    and all(s.name != name for s in self.spares):
                journal_spares = prev.get("spares")
                if journal_spares is None or name in journal_spares:
                    spare.backend_view = self.health_view
                    self.spares.append(spare)
        # 2. journal progress overrides intent
        for vip, names in prev.get("assignments", {}).items():
            if vip in self.policies:
                self.assignments[vip] = [n for n in names
                                         if n in self.instances]
        for name, is_active in prev.get("active", {}).items():
            if name in self.active:
                self.active[name] = bool(is_active)
        # 3. bootstrap liveness from current truth (an immediate probe
        # round) and re-bind the shared data-plane objects to OUR views:
        # each replica constructed its own health view, but only the
        # leader's is fed by a running monitor
        for name, instance in self.instances.items():
            up = not instance.host.failed
            self._instance_alive[name] = up
            self._instance_health.assume(name, up)
            instance.backend_view = self.health_view
        # backends too: a recovered stream probing in our first seconds
        # consults _backend_dead() through this view, and the unknown->
        # healthy default would tunnel it into a dead backend for good
        for bname, server in self.backends.items():
            self.health_view.assume(bname, not server.host.failed)
        # 4. re-install rules and re-anchor VIPs, fencing as we go
        for vip, policy in self.policies.items():
            self.l4lb.register_vip(vip, token=self.token)
            for name in self.assignments.get(vip, []):
                instance = self.instances.get(name)
                if instance is not None and not instance.host.failed:
                    instance.install_policy(policy, token=self.token)
        # 5. resume the old leader's unfinished drains on their original
        # absolute deadlines
        for name, info in prev.get("draining", {}).items():
            instance = self.instances.get(name)
            if instance is None:
                continue
            self.draining.add(name)
            if not instance.host.failed:
                instance.start_drain(token=self.token)
            if self._drainer is None:
                self._drainer = DrainCoordinator(self.loop, self,
                                                 self.drain_check_interval)
            self._drainer.resume(
                name, started_at=info.get("started_at", self.loop.now()),
                deadline_at=info["deadline_at"],
                flows_at_start=info.get("flows_at_start", 0),
                to_spare=info.get("to_spare", False),
            )
        # 6. the fencing push: every mapping goes out at our epoch, so
        # anything the old leader still says is rejected from here on.
        # Compact-table versions the old leader journaled are adopted
        # first: mapping versions are monotonic per L4 service, so the
        # re-pushed snapshots must land at (and record) versions at or
        # above the old leader's -- verified, not assumed.
        journaled_compact = {
            vip: int(v)
            for vip, v in (prev.get("compact_versions") or {}).items()
        }
        self.compact_versions.update(journaled_compact)
        for vip in self.policies:
            self._push_mapping(vip)
        if not self.failed_over:
            # versions are monotonic per L4 service; after a region
            # failover the standby L4's counters are independent and no
            # floor applies
            for vip, floor in journaled_compact.items():
                if self.compact_versions.get(vip, floor) < floor:
                    raise ControllerError(
                        f"compact table for {vip} regressed below the "
                        f"journaled version {floor} during takeover"
                    )
        # 5b. the old leader's autoscaler state: cooldown clocks and the
        # scale-event ledger, so the new leader's engine neither flaps
        # (cooldowns reset) nor forgets which stores were elastic.  The
        # interrupted scale-in itself was already resumed above as a
        # journaled drain.
        if self.autoscaler is not None:
            self.autoscaler.restore(prev.get("autoscale"))
        # 7. counters carry across leaderships (monotonic adoption)
        for key, value in prev.get("counters", {}).items():
            counter = self.metrics.counter(key)
            if value > counter.value:
                counter.inc(value - counter.value)
        self.metrics.counter("takeovers").inc()
        self.metrics.gauge("leader_epoch").set(float(token.epoch))
        self.journal_sync()

    # ------------------------------------------------------------ instances --
    def _adopt(self, instance: YodaInstance) -> None:
        if instance.name in self.instances:
            raise ControllerError(f"duplicate instance {instance.name!r}")
        self.instances[instance.name] = instance
        self.active[instance.name] = True
        self._instance_alive[instance.name] = True
        instance.backend_view = self.health_view

    def add_instance(self, instance: YodaInstance,
                     assign_all_vips: bool = True) -> None:
        """Bring a new instance into service without breaking any flow:
        installing policies first, then widening the L4 mappings."""
        self._adopt(instance)
        if assign_all_vips:
            for vip, policy in self.policies.items():
                instance.install_policy(policy, token=self.token)
                self.assignments[vip].append(instance.name)
                self._push_mapping(vip)
        self.metrics.counter("instances_added").inc()
        self.journal_sync()

    def add_spare(self, instance: YodaInstance) -> None:
        """Register a provisioned-but-idle instance for the autoscaler."""
        self.spares.append(instance)
        instance.backend_view = self.health_view

    def remove_instance(self, name: str) -> None:
        """Gracefully drain an instance.  Its in-flight flows migrate to
        the remaining instances through TCPStore -- no connection breaks
        (this is Problem 2 of Section 2.3 solved)."""
        if name not in self.instances:
            raise ControllerError(f"unknown instance {name!r}")
        self.active[name] = False
        for vip, assigned in self.assignments.items():
            if name in assigned:
                assigned.remove(name)
                self._push_mapping(vip, flush_instance=self.instances[name].ip)
        self._forget_instance(name)
        self.metrics.counter("instances_removed").inc()
        self.journal_sync()

    def _forget_instance(self, name: str) -> None:
        """Drop every controller-side trace of an instance that left the
        deployment.  Leaving ghost entries behind (the pre-HA behaviour)
        both distorted the monitor's health view and made a later re-add
        of the same instance -- the autoscaler's drain-to-spare round trip
        -- fail as a duplicate."""
        self.instances.pop(name, None)
        self.active.pop(name, None)
        self._instance_alive.pop(name, None)
        self._instance_health.forget(name)

    def live_instance_names(self, vip: Optional[str] = None) -> List[str]:
        names = self.assignments.get(vip, list(self.instances)) if vip \
            else list(self.instances)
        return [
            n for n in names
            if self.active.get(n) and self._instance_alive.get(n)
            and n not in self.draining
        ]

    # -------------------------------------------------------------- draining --
    def drain_instance(self, name: str, deadline: Optional[float] = None,
                       to_spare: bool = False) -> DrainStatus:
        """Scale an instance in without breaking its flows (make before
        break, DESIGN.md section 7).

        The instance leaves the mux hash rings immediately -- no new SYN
        lands on it -- but stays reachable through its SNAT ownership and
        flow-table pins, so established flows finish in place.  When its
        flow table empties it is removed cleanly; if ``deadline`` elapses
        first, the survivors are handed off through TCPStore (the
        failover path, invoked deliberately).
        """
        if name not in self.instances:
            raise ControllerError(f"unknown instance {name!r}")
        if name in self.draining:
            raise ControllerError(f"instance {name!r} is already draining")
        if not [n for n in self.live_instance_names() if n != name]:
            raise ControllerError("cannot drain the last live instance")
        instance = self.instances[name]
        self.draining.add(name)
        instance.start_drain(token=self.token)
        if self._drainer is None:
            self._drainer = DrainCoordinator(self.loop, self,
                                             self.drain_check_interval)
        status = self._drainer.start(
            name, self.drain_deadline if deadline is None else deadline,
            to_spare=to_spare,
        )
        self.metrics.counter("drains_started").inc()
        if OBS.enabled:
            OBS.flight("controller", "drain_start",
                       f"{name} flows={status.flows_at_start} "
                       f"deadline={status.deadline_at:.3f}")
        for vip, assigned in self.assignments.items():
            if name in assigned:
                self._push_mapping(vip)
        self.journal_sync()
        return status

    def _finish_drain(self, status: DrainStatus, crashed: bool = False) -> None:
        """DrainCoordinator callback: the instance emptied, timed out, or
        crashed mid-drain."""
        name = status.name
        self.draining.discard(name)
        instance = self.instances.get(name)
        self.active[name] = False
        vips = [vip for vip, assigned in self.assignments.items()
                if name in assigned]
        for vip in vips:
            self.assignments[vip].remove(name)
            self._push_mapping(vip)
        if instance is not None and not crashed:
            if status.state is DrainState.FORCED:
                # Deadline hit: forget local state (keeping the TCPStore
                # records) and flush the mux pins, so the ring re-hashes
                # the survivors' next packets onto live instances, which
                # recover them.  The SNAT range stays allocated: recovered
                # flows keep their ports.
                instance.release_flows(token=self.token)
                self.l4lb.flush_instance(instance.ip, token=self.token)
                self.metrics.counter("drains_forced").inc()
            else:
                for vip in vips:
                    self.l4lb.snat.release(vip, instance.ip)
                # Every flow finished, but the muxes still hold this
                # instance's 5-tuple pins until their idle timeout.  The
                # client-side keys are ephemeral; the server-side keys
                # (backend -> VIP:snat-port) RECUR the moment the released
                # port block is re-allocated -- a stale pin would then
                # steer the new owner's SYN-ACKs at this parked instance,
                # which RSTs them.  Flush now, while the pins are dead.
                self.l4lb.flush_instance(instance.ip, token=self.token)
                self.metrics.counter("drains_completed").inc()
            # the instance has left the deployment: drop its monitor and
            # health-view entries so a later re-add starts clean
            self._forget_instance(name)
        self.metrics.counter("instances_removed").inc()
        if status.to_spare and instance is not None and not crashed:
            instance.draining = False
            self.spares.append(instance)
        self.journal_sync()

    # ----------------------------------------------------------------- VIPs --
    def add_vip(self, policy: VipPolicy,
                backends: Optional[Dict[str, BackendHttpServer]] = None,
                instance_names: Optional[List[str]] = None) -> None:
        """VIP addition (Section 5.2): compute/record the assignment,
        install rules on the assigned instances, then map the VIP at the
        L4 LB -- strictly in that order, so no packet arrives at an
        instance without rules."""
        vip = policy.vip
        if vip in self.policies:
            raise ControllerError(f"VIP {vip} already exists")
        self.policies[vip] = policy
        if backends:
            for name, server in backends.items():
                self.backends[name] = server
        names = instance_names or [
            n for n, live in self._instance_alive.items()
            if live and self.active.get(n) and n not in self.draining
        ]
        if not names:
            raise ControllerError("no live instances to assign the VIP to")
        self.assignments[vip] = list(names)
        for name in names:
            self.instances[name].install_policy(policy, token=self.token)
        self.l4lb.register_vip(vip, token=self.token)
        self._push_mapping(vip)
        self.metrics.counter("vips_added").inc()
        self.journal_sync()

    def remove_vip(self, vip: str) -> None:
        """Reverse order of addition: unmap first, then drop rules."""
        if vip not in self.policies:
            raise ControllerError(f"unknown VIP {vip}")
        self.l4lb.unregister_vip(vip, token=self.token)
        for name in self.assignments.pop(vip, []):
            instance = self.instances.get(name)
            if instance is not None:
                instance.remove_policy(vip, token=self.token)
        del self.policies[vip]
        # decommission backends no remaining policy references: ghost
        # health entries distort fail-open selection (which scans the
        # view) and would pin dead verdicts forever
        for bname in list(self.backends):
            if not any(bname in p.backends for p in self.policies.values()):
                del self.backends[bname]
                self.health_view.forget(bname)
        self.metrics.counter("vips_removed").inc()
        self.journal_sync()

    def update_policy(self, policy: VipPolicy) -> None:
        """Push a new policy version.  Instances apply it to new
        connections only, so existing flows are never re-routed
        (Section 5.2, the Figure 14 experiment)."""
        vip = policy.vip
        if vip not in self.policies:
            raise ControllerError(f"unknown VIP {vip}")
        if policy.version <= self.policies[vip].version:
            policy = self.policies[vip].updated(
                rules=policy.rules, backends=policy.backends
            )
        self.policies[vip] = policy
        for name in self.assignments.get(vip, []):
            instance = self.instances.get(name)
            if instance is not None:
                instance.install_policy(policy, token=self.token)
        self.metrics.counter("policy_updates").inc()

    def set_assignment(self, vip: str, instance_names: List[str]) -> None:
        """Install a (re)computed VIP-to-instance assignment (Section 4.5)."""
        if vip not in self.policies:
            raise ControllerError(f"unknown VIP {vip}")
        policy = self.policies[vip]
        for name in instance_names:
            self.instances[name].install_policy(policy, token=self.token)
        removed = set(self.assignments.get(vip, [])) - set(instance_names)
        self.assignments[vip] = list(instance_names)
        self._push_mapping(vip)
        self.journal_sync()
        # rules on removed instances are dropped lazily once their flows
        # drain; the mapping change is what redirects traffic

    def _push_mapping(self, vip: str, flush_instance: Optional[str] = None) -> None:
        assigned = self.assignments.get(vip, [])
        ips = [
            self.instances[n].ip
            for n in assigned
            if self._instance_alive.get(n) and self.active.get(n)
            and n not in self.draining
        ]
        # draining instances leave the hash ring (no new SYNs) but stay
        # known to the muxes so pinned/SNAT-owned flows still reach them
        draining_ips = [
            self.instances[n].ip
            for n in assigned
            if n in self.draining
            and self._instance_alive.get(n) and self.active.get(n)
        ]
        self.l4lb.update_mapping(vip, ips, flush_removed=True,
                                 draining_ips=draining_ips, token=self.token)
        compact_version = self.l4lb.compact_version(vip)
        if compact_version is not None:
            self.compact_versions[vip] = compact_version

    # --------------------------------------------------------------- monitor --
    def register_backend(self, name: str, server: BackendHttpServer) -> None:
        self.backends[name] = server

    def _probe(self, host) -> bool:
        """One health ping: fails when the host is down or the probe
        itself is lost in transit."""
        if host.failed:
            return False
        if self.probe_loss_rate and self._probe_rng.random() < self.probe_loss_rate:
            self.metrics.counter("probes_lost").inc()
            return False
        return True

    def _monitor_tick(self) -> None:
        """One guarded monitor round.

        Two layers of protection around the actual pass:

        - leadership: a replica that is not the acting leader observes
          nothing and mutates nothing (the data plane must be statically
          stable while leaderless, and doubly-probed under a duel);
        - containment: a raising probe, breaker callback or push must not
          propagate out of the periodic task -- that would silently kill
          monitoring forever.  Fencing rejections demote this replica;
          anything else is recorded and the next round proceeds.
        """
        if not self.acting():
            return
        try:
            self._monitor_pass()
        except StaleLeaderEpoch as exc:
            self.metrics.counter("pushes_fenced").inc()
            if OBS.enabled:
                OBS.flight("controller", "fenced", str(exc))
            if self.on_fenced is not None:
                self.on_fenced(exc)
        except Exception as exc:  # noqa: BLE001 - the containment boundary
            self.metrics.counter("monitor_tick_errors").inc()
            if OBS.enabled:
                OBS.flight("controller", "monitor_error",
                           f"{type(exc).__name__}: {exc}")

    def _monitor_pass(self) -> None:
        # YODA instances: remove failed ones from every mapping + flush
        for name, instance in self.instances.items():
            alive = self._instance_health.observe(name, self._probe(instance.host))
            if not alive and self._instance_alive.get(name, True):
                self._instance_alive[name] = False
                self.metrics.counter("instance_failures_detected").inc()
                if OBS.enabled:
                    OBS.flight("controller", "instance_down",
                               f"{name} removed from mappings")
                for vip, assigned in self.assignments.items():
                    if name in assigned:
                        self._push_mapping(vip)
            elif alive and not self._instance_alive.get(name, True):
                self._instance_alive[name] = True
                if OBS.enabled:
                    OBS.flight("controller", "instance_up",
                               f"{name} readmitted to mappings")
                for vip, assigned in self.assignments.items():
                    if name in assigned:
                        self._push_mapping(vip)
        # backends: update the health view the selectors consult.  Load is
        # only readable when the probe comes back.
        for name, server in self.backends.items():
            ok = self._probe(server.host)
            self.health_view.observe(
                name, ok, load=float(server.active_requests) if ok else None
            )
        # Memcached servers: drop dead ones from the replication ring.
        # mark_live respects client-imposed quarantines, so the monitor
        # cannot re-admit a server the data path just proved unresponsive.
        if self.kv_cluster is not None:
            self._monitor_kv_cluster(self.kv_cluster)
        # the standby region's store is monitored too (pre-failover it is
        # not ``self.kv_cluster`` yet): WAN-partition timeouts make the
        # relay's client mark secondary servers dead, and only the monitor
        # re-admits them once their quarantine expires
        if (self._standby is not None and not self.failed_over
                and self._standby.kv_cluster is not None):
            self._monitor_kv_cluster(self._standby.kv_cluster)
        # region failover: every primary instance is confirmed down (per
        # the same hysteresis that governs single-instance removal) and a
        # standby region is registered.  The probe consults ``host.failed``
        # directly, so a WAN partition -- primary alive but unreachable
        # from afar -- never looks like region death: that is the
        # split-brain guard (no second region ever serves a VIP while the
        # first still owns it).
        if (self._standby is not None and not self.failed_over
                and self.instances
                and not any(self._instance_alive[n] for n in self.instances)):
            self._fail_over_region()
        # traffic statistics from the instances
        for name, instance in self.instances.items():
            if self._instance_alive[name]:
                for vip, count in instance.read_and_reset_traffic().items():
                    self.traffic_stats[vip] = self.traffic_stats.get(vip, 0) + count

    def _monitor_kv_cluster(self, cluster: MemcachedCluster) -> None:
        for name, server in list(cluster.servers.items()):
            ok = self._kv_health.observe(name, self._probe(server.host))
            if not ok and name in cluster.ring:
                cluster.mark_dead(name)
                self.metrics.counter("kv_failures_detected").inc()
                if OBS.enabled:
                    OBS.flight("controller", "kv_down",
                               f"{name} dropped from replication ring")
            elif ok and name not in cluster.ring:
                cluster.mark_live(name, now=self.loop.now())
                if OBS.enabled:
                    OBS.flight("controller", "kv_up",
                               f"{name} back in replication ring")

    # ------------------------------------------------------------ multi-region --
    def register_standby_region(self, region: StandbyRegion) -> None:
        """Arm a built-but-idle secondary region for automatic failover."""
        if self._standby is not None:
            raise ControllerError("a standby region is already registered")
        for instance in region.instances:
            if instance.name in self.instances:
                raise ControllerError(
                    f"standby instance {instance.name!r} collides with a "
                    f"primary instance")
            instance.backend_view = self.health_view
        self._standby = region

    def _fail_over_region(self) -> None:
        """The primary region is gone: promote the secondary and re-home
        every VIP there (the paper's instance-failover mechanism, Section
        4.4, generalized to whole sites).

        The order mirrors ``add_vip`` exactly: promote the store first
        (recovery reads must see the replicated records, not race the
        promotion), install rules on the standby instances, then re-anchor
        each VIP on the standby router and push mappings -- so no packet
        reaches an instance without rules.
        """
        standby = self._standby
        assert standby is not None
        self.failed_over = True
        self.failover_at = self.loop.now()
        dead_ips = [inst.ip for name, inst in self.instances.items()
                    if not self._instance_alive.get(name)]
        # 1. promote the secondary store: cross-site shipping stops, the
        # unshipped backlog is the failover's data loss, and stale copies
        # converge through newest-wins + read-repair on recovery reads
        if standby.replicator is not None:
            self.failover_records_lost = standby.replicator.promote()
        if standby.kv_cluster is not None:
            self.kv_cluster = standby.kv_cluster
            standby.kv_cluster.add_listener(self._on_kv_membership)
        # 2. the standby instances join the deployment
        primary_l4lb = self.l4lb
        self.l4lb = standby.l4lb
        for instance in standby.instances:
            self._adopt(instance)
        names = [inst.name for inst in standby.instances]
        for vip, policy in self.policies.items():
            for instance in standby.instances:
                instance.install_policy(policy, token=self.token)
            self.assignments[vip] = list(names)
            # 3. VIP re-anchoring: claiming the VIP onto the standby
            # router re-points the fabric route, and deliveries re-check
            # routes, so even packets already in flight land on the new
            # region
            self.l4lb.register_vip(vip, token=self.token)
            # 4. mapping push doubles as SNAT-range re-derivation: the
            # standby allocator mints a fresh port block per (VIP,
            # instance) as the mapping installs
            self._push_mapping(vip)
        # 5. flush the dead region's mux pins -- harmless when the primary
        # router died with its site, load-bearing for partial-site
        # failures where surviving muxes would keep steering pinned flows
        # at dead instances
        for ip in dead_ips:
            primary_l4lb.flush_instance(ip, token=self.token)
        self.metrics.counter("region_failovers").inc()
        self.metrics.gauge("failover_records_lost").set(
            float(self.failover_records_lost))
        if OBS.enabled:
            OBS.flight("controller", "region_failover",
                       f"promoted {standby.site}: {len(names)} instances "
                       f"take over, {self.failover_records_lost} unshipped "
                       f"records lost")
        self.journal_sync()

    # -------------------------------------------------------- store membership --
    def _on_kv_membership(self, event: str, name: str) -> None:
        self.metrics.counter(f"kv_membership_{event}").inc()

    def decommission_store(self, name: str) -> None:
        """Retire a Memcached server from the deployment for good.  Unlike
        ``mark_dead`` this removes it from the membership map too, so
        long-lived clients prune their per-server bookkeeping (timeout
        streaks, hinted writes, pending-op targets) instead of carrying it
        forever."""
        if self.kv_cluster is None:
            raise ControllerError("deployment has no kv cluster")
        if not self.kv_cluster.remove(name):
            raise ControllerError(f"unknown store server {name!r}")
        self._kv_health.forget(name)
        self.metrics.counter("stores_decommissioned").inc()

    # ------------------------------------------------------------- autoscale --
    def enable_autoscaling(self, config: Optional[AutoscaleConfig] = None) -> None:
        """Arm the legacy Fig. 13 CPU-watermark policy.  Since the
        autoscale subsystem landed this is a compatibility preset: the
        same watermark/sizing arithmetic runs through
        ``repro.autoscale``'s policy engine, decision-for-decision
        identical to the historical in-controller pass."""
        from repro.autoscale.engine import Autoscaler
        from repro.autoscale.policy import ElasticPolicy

        policy = ElasticPolicy.from_legacy(config or AutoscaleConfig())
        self.attach_autoscaler(Autoscaler(self, policy))

    def attach_autoscaler(self, autoscaler) -> None:
        """Bind (and start) a closed-loop autoscaler on this replica."""
        if self.autoscaler is not None:
            self.autoscaler.stop()
        self.autoscaler = autoscaler
        # fresh utilization windows so the first decision sees only
        # post-arming load
        for instance in self.instances.values():
            instance.cpu.reset_window()
        autoscaler.start()
