"""Server selection: the HAProxy-style linear rule scan, plus priority.

The paper keeps HAProxy's classification algorithm -- one chained table,
scanned linearly per new connection -- and adds a priority field (rules are
arranged in decreasing priority).  The scan latency model is calibrated to
Figure 6: P90 lookup latency grows linearly in the number of rules, with
10K rules costing about 3x what 1K rules cost.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Protocol

from repro.core.rules import Rule
from repro.errors import PolicyError
from repro.http.message import HttpRequest
from repro.sim.random import SeededRng, stable_hash64


class BackendView(Protocol):
    """What the selector needs to know about backends."""

    def is_healthy(self, backend: str) -> bool: ...

    def load(self, backend: str) -> float: ...


class AllHealthy:
    """Default view: every backend healthy, equal load."""

    def is_healthy(self, backend: str) -> bool:
        return True

    def load(self, backend: str) -> float:
        return 0.0


class _FailOpen:
    """Panic view: believe nobody is dead, but keep the real loads."""

    def __init__(self, view: BackendView):
        self._view = view

    def is_healthy(self, backend: str) -> bool:
        return True

    def load(self, backend: str) -> float:
        return self._view.load(backend)


@dataclass
class ScanCostModel:
    """Rule-scan latency: base + per_rule * rules_scanned (Figure 6).

    Defaults solve the paper's two data points -- scanning 10K rules is
    ~3x scanning 1K, and 2K rules corresponds to the 5 ms latency target
    used in Section 8: base = 3.18 ms, per_rule = 0.909 us.
    """

    base: float = 3.18e-3
    per_rule: float = 0.909e-6

    def latency(self, rules_scanned: int) -> float:
        return self.base + self.per_rule * rules_scanned


@dataclass
class SelectionResult:
    backend: str
    rule: Rule
    rules_scanned: int
    scan_latency: float


class RuleTable:
    """A VIP's rules, arranged in decreasing priority, scanned linearly."""

    def __init__(self, rules: List[Rule], cost_model: Optional[ScanCostModel] = None):
        # stable sort: same priority keeps declaration order
        self._rules = sorted(rules, key=lambda r: -r.priority)
        self.cost_model = cost_model or ScanCostModel()
        self.lookups = 0
        self.panic_selections = 0

    def __len__(self) -> int:
        return len(self._rules)

    @property
    def rules(self) -> List[Rule]:
        return list(self._rules)

    def select(
        self,
        request: HttpRequest,
        rng: SeededRng,
        view: Optional[BackendView] = None,
    ) -> Optional[SelectionResult]:
        """Pick a backend for ``request``.

        Scans rules in priority order; a rule is skipped when none of its
        backends is healthy -- that skip is what makes the paper's
        primary-backup pattern (same match, two priorities) work.

        When the health view disqualifies *every* candidate (which a
        monitor false-positive storm can do even while the backends are
        fine), the table fails open: a second scan ignores health and
        routes anyway.  Trying a possibly-dead backend at worst costs one
        connect timeout; resetting the client is a guaranteed failure.
        Returns None only if no rule matches at all (or matching rules
        carry zero weight).
        """
        view = view or AllHealthy()
        self.lookups += 1
        result = self._scan(request, rng, view)
        if result is None and not isinstance(view, AllHealthy):
            result = self._scan(request, rng, _FailOpen(view))
            if result is not None:
                self.panic_selections += 1
        if result is not None:
            # optional hook: views that meter admissions (e.g. half-open
            # circuit-breaker probes) learn which backend won the scan
            notify = getattr(view, "on_selected", None)
            if notify is not None:
                notify(result.backend)
        return result

    def _scan(
        self, request: HttpRequest, rng: SeededRng, view: BackendView
    ) -> Optional[SelectionResult]:
        scanned = 0
        for rule in self._rules:
            scanned += 1
            if not rule.match.matches(request):
                continue
            backend = self._apply_action(rule, request, rng, view)
            if backend is not None:
                return SelectionResult(
                    backend=backend,
                    rule=rule,
                    rules_scanned=scanned,
                    scan_latency=self.cost_model.latency(scanned),
                )
        return None

    def _apply_action(
        self, rule: Rule, request: HttpRequest, rng: SeededRng, view: BackendView
    ) -> Optional[str]:
        action = rule.action
        if action.table is not None:
            return self._sticky_lookup(action, request, view)
        healthy = [b for b in action.split if view.is_healthy(b)]
        if not healthy:
            return None
        if action.least_loaded:
            return min(healthy, key=lambda b: (view.load(b), b))
        weights = [action.split[b] for b in healthy]
        if all(w == 0 for w in weights):
            return None
        return rng.weighted_choice(healthy, weights)

    @staticmethod
    def _sticky_lookup(action, request: HttpRequest, view: BackendView) -> Optional[str]:
        """Rendezvous-hash the cookie value onto the healthy members.

        Deterministic across instances: any YODA instance maps the same
        session cookie to the same backend with no shared table, and a
        backend failure only remaps that backend's sessions.
        """
        cookie_value = request.cookie(action.table)
        if cookie_value is None:
            cookie_value = ""  # no cookie: still deterministic per ""
        healthy = [b for b in action.table_members if view.is_healthy(b)]
        if not healthy:
            return None
        return max(
            healthy,
            key=lambda b: stable_hash64(f"{cookie_value}@{b}", salt="sticky"),
        )
