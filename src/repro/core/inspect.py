"""Operator-facing introspection: snapshot a deployment's state as text.

The paper's controller exposes health and traffic statistics over REST;
this module is the equivalent read side for the simulation -- a structured
snapshot (suitable for assertions) plus a rendered table (suitable for
humans debugging an experiment).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.analysis.report import render_table
from repro.core.controller import YodaController
from repro.core.service import YodaService


@dataclass
class InstanceSnapshot:
    name: str
    ip: str
    alive: bool
    active: bool
    flows: int
    flows_by_phase: Dict[str, int]
    rules: int
    completed_flows: int
    recovered_flows: int
    cpu_queue_s: float


@dataclass
class VipSnapshot:
    vip: str
    version: int
    rule_count: int
    tls: bool
    assigned: List[str]
    mapped_ips: List[str]
    backends_healthy: int
    backends_total: int


@dataclass
class StoreSnapshot:
    name: str
    alive: bool
    in_ring: bool
    keys: int
    ops: Dict[str, int]


@dataclass
class DeploymentSnapshot:
    time: float
    instances: List[InstanceSnapshot] = field(default_factory=list)
    vips: List[VipSnapshot] = field(default_factory=list)
    stores: List[StoreSnapshot] = field(default_factory=list)

    def instance(self, name: str) -> Optional[InstanceSnapshot]:
        return next((i for i in self.instances if i.name == name), None)

    def total_flows(self) -> int:
        return sum(i.flows for i in self.instances)

    def render(self) -> str:
        parts = [f"deployment @ t={self.time:.3f}s"]
        parts.append(render_table(
            [{
                "instance": i.name, "state": self._state(i),
                "flows": i.flows, "rules": i.rules,
                "completed": i.completed_flows, "recovered": i.recovered_flows,
            } for i in self.instances],
            title="L7 instances",
        ))
        parts.append(render_table(
            [{
                "vip": v.vip, "ver": v.version, "rules": v.rule_count,
                "tls": "yes" if v.tls else "no",
                "instances": len(v.mapped_ips),
                "backends": f"{v.backends_healthy}/{v.backends_total}",
            } for v in self.vips],
            title="VIPs",
        ))
        parts.append(render_table(
            [{
                "store": s.name,
                "state": "up" if s.alive else "DOWN",
                "ring": "in" if s.in_ring else "out",
                "keys": s.keys,
                "sets": s.ops.get("set", 0), "gets": s.ops.get("get", 0),
            } for s in self.stores],
            title="TCPStore",
        ))
        return "\n\n".join(parts)

    @staticmethod
    def _state(i: InstanceSnapshot) -> str:
        if not i.alive:
            return "FAILED"
        return "active" if i.active else "draining"


def snapshot(service: YodaService) -> DeploymentSnapshot:
    """Capture the current state of a whole YODA deployment."""
    controller: YodaController = service.controller
    snap = DeploymentSnapshot(time=service.loop.now())

    for name, instance in controller.instances.items():
        phases: Dict[str, int] = {}
        for flow in instance.flows.values():
            phases[flow.phase.value] = phases.get(flow.phase.value, 0) + 1
        counters = instance.metrics.counters
        snap.instances.append(InstanceSnapshot(
            name=name, ip=instance.ip,
            alive=not instance.host.failed,
            active=bool(controller.active.get(name)),
            flows=len(instance.flows),
            flows_by_phase=phases,
            rules=instance.rule_count(),
            completed_flows=instance.completed_flows,
            recovered_flows=(counters["flows_recovered"].value
                             if "flows_recovered" in counters else 0),
            cpu_queue_s=instance.cpu.queue_delay(),
        ))

    for vip, policy in controller.policies.items():
        backends = list(policy.backends)
        healthy = sum(
            1 for b in backends if controller.health_view.is_healthy(b)
        )
        snap.vips.append(VipSnapshot(
            vip=vip, version=policy.version, rule_count=policy.rule_count,
            tls=policy.certificate is not None,
            assigned=list(controller.assignments.get(vip, [])),
            mapped_ips=service.l4lb.mapping(vip),
            backends_healthy=healthy, backends_total=len(backends),
        ))

    if controller.kv_cluster is not None:
        for name, server in controller.kv_cluster.servers.items():
            snap.stores.append(StoreSnapshot(
                name=name, alive=not server.host.failed,
                in_ring=name in controller.kv_cluster.ring,
                keys=len(server), ops=dict(server.ops),
            ))
    return snap
