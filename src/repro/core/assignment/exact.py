"""Exact branch-and-bound solver for small Figure 7 instances.

Exponential, so only usable for toy sizes -- but that makes it a perfect
*oracle*: the test suite compares the greedy and LP-rounding heuristics
against provably optimal instance counts on small random problems,
turning "the heuristics look reasonable" into a measured optimality gap.

Covers the steady-state formulation (Eq. 1-3); update constraints
(Eq. 4-7) are heuristic-only territory.
"""

from __future__ import annotations

import math
import time
from typing import Dict, List, Optional, Tuple

from repro.core.assignment.problem import Assignment, AssignmentProblem
from repro.errors import InfeasibleError

MAX_VIPS = 12
MAX_INSTANCES = 10


def solve_exact(problem: AssignmentProblem,
                time_budget: float = 10.0) -> Assignment:
    """Find an assignment using provably the fewest instances.

    Raises:
        InfeasibleError: no feasible assignment exists.
        ValueError: the problem is too large for exact search.
    """
    vips = sorted(problem.vips, key=lambda v: -v.per_instance_share)
    instances = list(problem.instances)
    if len(vips) > MAX_VIPS or len(instances) > MAX_INSTANCES:
        raise ValueError(
            f"exact solver is for toy sizes (<= {MAX_VIPS} VIPs x "
            f"<= {MAX_INSTANCES} instances); use the greedy/LP solvers"
        )

    deadline = time.perf_counter() + time_budget
    n_inst = len(instances)
    shares = [v.per_instance_share for v in vips]
    rules = [v.rules for v in vips]
    replicas = [v.replicas for v in vips]
    cap_t = [i.traffic_capacity for i in instances]
    cap_r = [i.rule_capacity for i in instances]

    best: Dict[str, object] = {"count": None, "mapping": None}
    used_traffic = [0.0] * n_inst
    used_rules = [0] * n_inst
    chosen: List[Tuple[int, ...]] = []

    def opened_count() -> int:
        return sum(1 for r in used_rules if r > 0) or \
            sum(1 for t in used_traffic if t > 0)

    def search(v: int, opened: int) -> None:
        if time.perf_counter() > deadline:
            raise TimeoutError
        if best["count"] is not None and opened >= best["count"] and v < len(vips):
            # even with zero new instances we cannot beat the incumbent
            # unless we finish without opening more; keep exploring only
            # if equality could still win -> prune strictly worse states
            if opened > best["count"]:
                return
        if v == len(vips):
            if best["count"] is None or opened < best["count"]:
                best["count"] = opened
                best["mapping"] = list(chosen)
            return
        # choose replicas[v] instances for vip v (combinations, since the
        # replica set is unordered)
        need = replicas[v]

        def combos(start: int, picked: List[int]) -> None:
            if len(picked) == need:
                new_opened = opened
                for idx in picked:
                    if used_rules[idx] == 0 and used_traffic[idx] == 0.0:
                        new_opened += 1
                if best["count"] is not None and new_opened > best["count"]:
                    return
                for idx in picked:
                    used_traffic[idx] += shares[v]
                    used_rules[idx] += rules[v]
                chosen.append(tuple(picked))
                search(v + 1, new_opened)
                chosen.pop()
                for idx in picked:
                    used_traffic[idx] -= shares[v]
                    used_rules[idx] -= rules[v]
                return
            if start == n_inst:
                return
            remaining = n_inst - start
            if remaining < need - len(picked):
                return
            idx = start
            if (used_traffic[idx] + shares[v] <= cap_t[idx] + 1e-9
                    and used_rules[idx] + rules[v] <= cap_r[idx]):
                picked.append(idx)
                combos(start + 1, picked)
                picked.pop()
            combos(start + 1, picked)

        combos(0, [])

    try:
        search(0, 0)
    except TimeoutError:
        pass  # best-so-far is still a valid (possibly optimal) answer
    if best["mapping"] is None:
        raise InfeasibleError("no feasible assignment exists (exact search)")

    mapping = {
        vips[v].name: [instances[idx].name for idx in combo]
        for v, combo in enumerate(best["mapping"])
    }
    return Assignment(mapping=mapping, solver="exact-bnb")
