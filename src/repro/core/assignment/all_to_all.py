"""The all-to-all baseline (paper Section 4.4).

Every VIP (and all of its rules) on every instance: maximum robustness and
the minimum possible instance count (total traffic / per-instance
capacity), at the price of every instance scanning every tenant's rules --
the latency problem Figure 6 quantifies.
"""

from __future__ import annotations

import math
import time
from typing import List

from repro.core.assignment.problem import Assignment, AssignmentProblem
from repro.errors import InfeasibleError


def min_instances_for_traffic(problem: AssignmentProblem) -> int:
    """The reference lower bound used in Fig. 16(c): total traffic divided
    by per-instance traffic capacity."""
    if not problem.instances:
        raise InfeasibleError("no instances")
    capacity = problem.instances[0].traffic_capacity
    return max(1, math.ceil(problem.total_traffic() / capacity))


def solve_all_to_all(problem: AssignmentProblem,
                     honor_replicas: bool = False) -> Assignment:
    """Assign every VIP to every instance.

    Args:
        honor_replicas: if True, clamp each VIP to its first n_v instances
            so Eq. 3 still validates; if False (paper semantics), replicas
            equal the full instance set.
    """
    start = time.perf_counter()
    names: List[str] = [i.name for i in problem.instances]
    mapping = {}
    for vip in problem.vips:
        if honor_replicas:
            mapping[vip.name] = names[: vip.replicas]
        else:
            mapping[vip.name] = list(names)
    return Assignment(
        mapping=mapping, solver="all-to-all",
        solve_seconds=time.perf_counter() - start,
    )
