"""Periodic assignment updates (paper Section 4.5, evaluated in Fig. 16).

``plan_update`` runs one re-assignment round the way the paper's Section 8
does: solve under the migration/transient constraints (YODA-limit); if the
LP is infeasible at the configured delta, relax delta in +10% increments
exactly as the paper reports doing ("the LP gave infeasible assignment at
two points ... we increased the limit by increments of 10%").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.assignment.constraints import (
    transient_overloaded_instances,
    validate_assignment,
)
from repro.core.assignment.greedy import compact_assignment, solve_greedy
from repro.core.assignment.ilp import IlpSolver
from repro.core.assignment.problem import Assignment, AssignmentProblem
from repro.errors import InfeasibleError


@dataclass
class UpdateOutcome:
    """One re-assignment round's results (the Fig. 16 metrics)."""

    assignment: Assignment
    instances_used: int
    median_rules_per_instance: float
    migrated_fraction: float
    transient_overloaded: List[str]
    effective_migration_limit: Optional[float]
    relaxations: int = 0
    solve_seconds: float = 0.0


def _median(values: List[float]) -> float:
    if not values:
        return 0.0
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def plan_update(
    problem: AssignmentProblem,
    limit: bool = True,
    use_lp: bool = True,
    max_relaxations: int = 9,
) -> UpdateOutcome:
    """Compute the next assignment.

    Args:
        limit: True = YODA-limit (Eq. 4-7 enforced, delta relaxed by +10%
            on infeasibility); False = YODA-no-limit.
        use_lp: use the LP-rounding solver (falls back to greedy anyway).
    """
    relaxations = 0
    work = problem
    while True:
        try:
            if use_lp:
                solver = IlpSolver(enforce_update_constraints=limit)
                assignment = solver.solve(work)
            else:
                assignment = solve_greedy(work, enforce_update_constraints=limit)
                assignment = compact_assignment(
                    work, assignment, enforce_update_constraints=limit
                )
            break
        except InfeasibleError:
            if not limit or work.migration_limit is None:
                raise
            relaxations += 1
            if relaxations > max_relaxations:
                raise
            work = AssignmentProblem(
                vips=work.vips,
                instances=work.instances,
                old_assignment=work.old_assignment,
                old_connections=work.old_connections,
                migration_limit=work.migration_limit + 0.10,
            )

    rules = list(assignment.rules_per_instance(problem).values())
    return UpdateOutcome(
        assignment=assignment,
        instances_used=assignment.num_instances_used(),
        median_rules_per_instance=_median([float(r) for r in rules]),
        migrated_fraction=assignment.migrated_fraction(problem),
        transient_overloaded=transient_overloaded_instances(problem, assignment),
        effective_migration_limit=work.migration_limit,
        relaxations=relaxations,
        solve_seconds=assignment.solve_seconds,
    )
