"""The Figure 7 ILP, solved by LP relaxation + rounding + greedy repair.

The paper solves the ILP with CPLEX at a 10% optimality gap.  CPLEX is not
available here, so we substitute: scipy's HiGGS LP solver relaxes
x_vy, y_y to [0, 1]; each VIP then keeps its n_v highest-valued instances
(ties broken toward the old assignment to avoid migration); the greedy
solver repairs any capacity violations and fills gaps; finally a
compaction pass tries to close lightly-used instances.  Every result is
validated against Eq. 1-7 exactly (see ``constraints.py``), so
approximation can cost instances but never correctness.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.assignment.constraints import validate_assignment
from repro.core.assignment.greedy import compact_assignment, solve_greedy
from repro.core.assignment.problem import Assignment, AssignmentProblem
from repro.errors import InfeasibleError

try:  # pragma: no cover - import guard
    from scipy.optimize import linprog
    from scipy.sparse import csr_matrix

    _HAVE_SCIPY = True
except ImportError:  # pragma: no cover
    _HAVE_SCIPY = False


class IlpSolver:
    """Solve an :class:`AssignmentProblem` approximately.

    Args:
        enforce_update_constraints: include Eq. 4-7 (YODA-limit).  With
            False (YODA-no-limit) the update terms are dropped entirely.
        compact: attempt to empty lightly-loaded instances after rounding.
    """

    def __init__(self, enforce_update_constraints: bool = True,
                 compact: bool = True):
        self.enforce_update_constraints = enforce_update_constraints
        self.compact = compact
        self.lp_lower_bound: Optional[float] = None

    def solve(self, problem: AssignmentProblem) -> Assignment:
        start = time.perf_counter()
        pinned = self._lp_round(problem) if _HAVE_SCIPY else None
        assignment = solve_greedy(
            problem,
            enforce_update_constraints=self.enforce_update_constraints,
            pinned=pinned,
        )
        if pinned is not None:
            # fractional rule-sharing can make the LP's pins mislead the
            # repair on rule-bound problems; never do worse than greedy
            try:
                plain = solve_greedy(
                    problem,
                    enforce_update_constraints=self.enforce_update_constraints,
                )
                if plain.num_instances_used() < assignment.num_instances_used():
                    assignment = plain
            except InfeasibleError:
                pass
        if self.compact:
            assignment = self._compact(problem, assignment)
        assignment.solver = "ilp-lp-rounding"
        assignment.solve_seconds = time.perf_counter() - start
        report = validate_assignment(
            problem, assignment,
            check_transient=self.enforce_update_constraints,
            check_migration=self.enforce_update_constraints,
        )
        if not report.ok:
            raise InfeasibleError(
                "rounded assignment failed validation: "
                + "; ".join(report.violations[:5])
            )
        return assignment

    # ------------------------------------------------------------ LP phase --
    def _lp_round(self, problem: AssignmentProblem) -> Optional[Dict[str, List[str]]]:
        vips, insts = problem.vips, problem.instances
        nv, ny = len(vips), len(insts)
        if nv == 0 or ny == 0:
            return None
        n_x = nv * ny

        def xi(v: int, y: int) -> int:
            return v * ny + y

        def yi(y: int) -> int:
            return n_x + y

        n_vars = n_x + ny
        c = np.zeros(n_vars)
        c[n_x:] = 1.0  # minimize sum of y_y

        # sparse constraint construction: (data, row, col) triplets
        eq_d, eq_r, eq_c = [], [], []
        for v, vip in enumerate(vips):
            for y in range(ny):
                eq_d.append(1.0)
                eq_r.append(v)
                eq_c.append(xi(v, y))
        b_eq = [float(vip.replicas) for vip in vips]
        n_eq = nv

        ub_d, ub_r, ub_c, b_ub = [], [], [], []
        row_idx = 0

        def add_entry(row: int, col: int, val: float) -> None:
            ub_d.append(val)
            ub_r.append(row)
            ub_c.append(col)

        shares = [vip.per_instance_share for vip in vips]
        for y, inst in enumerate(insts):
            # Eq. 1: traffic
            for v in range(nv):
                if shares[v]:
                    add_entry(row_idx, xi(v, y), shares[v])
            add_entry(row_idx, yi(y), -inst.traffic_capacity)
            b_ub.append(0.0)
            row_idx += 1
            # Eq. 2: rules
            for v, vip in enumerate(vips):
                if vip.rules:
                    add_entry(row_idx, xi(v, y), float(vip.rules))
            add_entry(row_idx, yi(y), -float(inst.rule_capacity))
            b_ub.append(0.0)
            row_idx += 1
        # x_vy <= y_y
        for v in range(nv):
            for y in range(ny):
                add_entry(row_idx, xi(v, y), 1.0)
                add_entry(row_idx, yi(y), -1.0)
                b_ub.append(0.0)
                row_idx += 1

        update_mode = (
            self.enforce_update_constraints
            and problem.old_assignment is not None
        )
        if update_mode:
            # Eq. 4-5: transient load.  Old traffic keeps arriving at its
            # old instances until every mux updates; where the VIP stays,
            # the contribution is max(old, new) = old + (new - old)^+ * x.
            for y, inst in enumerate(insts):
                const = 0.0
                for v, vip in enumerate(vips):
                    old = problem.old_share(vip.name, inst.name)
                    if old > 0:
                        const += old
                        coeff = max(shares[v] - old, 0.0)
                    else:
                        coeff = shares[v]
                    if coeff:
                        add_entry(row_idx, xi(v, y), coeff)
                b_ub.append(inst.traffic_capacity - const)
                row_idx += 1
            # Eq. 6-7: migration cap
            if problem.old_connections and problem.migration_limit is not None:
                total = problem.total_connections()
                const = 0.0
                vip_idx = {vip.name: v for v, vip in enumerate(vips)}
                inst_idx = {inst.name: y for y, inst in enumerate(insts)}
                for (vip_name, inst_name), conns in problem.old_connections.items():
                    if vip_name in vip_idx and inst_name in inst_idx:
                        const += conns
                        add_entry(row_idx, xi(vip_idx[vip_name],
                                              inst_idx[inst_name]), -conns)
                b_ub.append(problem.migration_limit * total - const)
                row_idx += 1

        a_eq = csr_matrix((eq_d, (eq_r, eq_c)), shape=(n_eq, n_vars))
        a_ub = csr_matrix((ub_d, (ub_r, ub_c)), shape=(row_idx, n_vars))

        result = linprog(
            c,
            A_ub=a_ub, b_ub=np.array(b_ub),
            A_eq=a_eq, b_eq=np.array(b_eq),
            bounds=[(0.0, 1.0)] * n_vars,
            method="highs",
        )
        if not result.success:
            return None
        self.lp_lower_bound = float(result.fun)
        x = result.x[:n_x].reshape(nv, ny)

        pinned: Dict[str, List[str]] = {}
        for v, vip in enumerate(vips):
            old = set((problem.old_assignment or {}).get(vip.name, []))
            scored = sorted(
                range(ny),
                key=lambda y: (
                    -x[v, y],
                    0 if insts[y].name in old else 1,
                    insts[y].name,
                ),
            )
            pinned[vip.name] = [
                insts[y].name for y in scored[: vip.replicas] if x[v, y] > 1e-6
            ]
        return pinned

    # ------------------------------------------------------- compaction pass --
    def _compact(self, problem: AssignmentProblem,
                 assignment: Assignment) -> Assignment:
        return compact_assignment(
            problem, assignment,
            enforce_update_constraints=self.enforce_update_constraints,
        )
