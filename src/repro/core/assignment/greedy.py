"""Greedy first-fit-decreasing solver for the Figure 7 problem.

Deterministic, fast, and always available; also serves as the repair step
for the LP-rounding solver.  Heuristics, in order:

1. Place VIPs by decreasing per-instance share (big rocks first).
2. For each VIP prefer instances it was already assigned to (zero
   migration), then instances already opened (minimize the objective),
   then fresh instances.
3. Respect Eq. 1/2 always; Eq. 4/5 (transient) and Eq. 6/7 (migration)
   only when the problem carries old state and a migration limit
   (YODA-limit mode).
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Set, Tuple

from repro.core.assignment.problem import Assignment, AssignmentProblem, VipSpec
from repro.errors import InfeasibleError


class _InstanceState:
    __slots__ = ("spec", "traffic", "rules", "old_traffic_by_vip")

    def __init__(self, spec):
        self.spec = spec
        self.traffic = 0.0
        self.rules = 0
        self.old_traffic_by_vip: Dict[str, float] = {}

    def transient_load(self) -> float:
        """max(old, new) per VIP, summed: the Eq. 4-5 quantity.

        ``traffic`` already holds the new shares of VIPs assigned here;
        VIPs that were here and left keep contributing their old share.
        """
        total = self.traffic
        for vip_name, old in self.old_traffic_by_vip.items():
            total += old  # old traffic still arrives until all muxes update
        return total


def solve_greedy(
    problem: AssignmentProblem,
    enforce_update_constraints: bool = True,
    pinned: Optional[Dict[str, List[str]]] = None,
) -> Assignment:
    """Solve by first-fit decreasing.

    Args:
        enforce_update_constraints: apply Eq. 4-7 when old state exists
            (set False for YODA-no-limit).
        pinned: optional partial assignment to honor (from LP rounding).

    Raises:
        InfeasibleError: when some VIP cannot be placed.
    """
    start = time.perf_counter()
    limit_mode = (
        enforce_update_constraints
        and problem.old_assignment is not None
        and problem.migration_limit is not None
    )

    states = {i.name: _InstanceState(i) for i in problem.instances}
    # seed transient bookkeeping with old shares (they apply to every
    # instance until the new mapping reaches all muxes)
    if limit_mode:
        for vip_name, assigned in (problem.old_assignment or {}).items():
            try:
                problem.vip(vip_name)
            except Exception:
                continue  # VIP was removed this round
            for inst in assigned:
                if inst in states:
                    states[inst].old_traffic_by_vip[vip_name] = problem.old_share(
                        vip_name, inst
                    )

    opened: Set[str] = set()
    mapping: Dict[str, List[str]] = {}
    migration_budget = (
        problem.migration_limit * problem.total_connections()
        if limit_mode and problem.old_connections
        else float("inf")
    )
    migrated = 0.0

    # big rocks first, where "big" is the dominant normalized dimension
    # (rules bind as often as traffic in the Section 8 workload)
    cap_t = max(i.traffic_capacity for i in problem.instances)
    cap_r = max(i.rule_capacity for i in problem.instances)
    order = sorted(
        problem.vips,
        key=lambda v: -max(v.per_instance_share / cap_t, v.rules / cap_r),
    )
    for vip in order:
        share = vip.per_instance_share
        chosen: List[str] = []
        pin = (pinned or {}).get(vip.name, [])
        old = set((problem.old_assignment or {}).get(vip.name, []))

        def fits(name: str) -> bool:
            st = states[name]
            if st.rules + vip.rules > st.spec.rule_capacity:
                return False
            if st.traffic + share > st.spec.traffic_capacity:
                return False
            if limit_mode:
                # Eq. 4-5: adding the new share on top of any old traffic
                # still arriving here must not exceed capacity.  If the VIP
                # was already here, its old share is replaced by
                # max(old, new) = handled by removing the old contribution.
                extra_old = st.old_traffic_by_vip.get(vip.name, 0.0)
                before = st.transient_load()
                after = before - min(extra_old, share) + share
                # Refuse only *avoidable* overload: an instance already
                # overloaded by old traffic may keep its VIPs (no new
                # assignment can reduce what the old mapping sends it).
                if after > st.spec.traffic_capacity and after > before + 1e-9:
                    return False
            return True

        def place(name: str) -> None:
            st = states[name]
            st.traffic += share
            st.rules += vip.rules
            opened.add(name)
            chosen.append(name)

        # preference tiers.  Staying on old instances (zero migration) is
        # only a goal in limit mode -- the paper's no-limit variant solves
        # each round from scratch, which is exactly why it migrates ~45%
        # of connections (Fig. 16(e)).
        tiers: List[List[str]] = [
            [n for n in pin if n in states],
            sorted(
                (n for n in old if n in states),
                key=lambda n: -(problem.old_connections or {}).get((vip.name, n), 0.0),
            ) if limit_mode else [],
            # best-fit decreasing: prefer the opened instance with the
            # least leftover capacity in the VIP's dominant dimension --
            # tighter packing means fewer instances (the objective)
            sorted(
                opened,
                key=lambda n: (
                    (states[n].spec.rule_capacity - states[n].rules)
                    if vip.rules / cap_r >= share / cap_t
                    else (states[n].spec.traffic_capacity - states[n].traffic),
                    n,
                ),
            ),
            sorted(
                (i.name for i in problem.instances if i.name not in opened),
                key=lambda n: n,
            ),
        ]
        seen: Set[str] = set()
        for tier in tiers:
            for name in tier:
                if len(chosen) == vip.replicas:
                    break
                if name in seen or name in chosen:
                    continue
                seen.add(name)
                if fits(name):
                    place(name)
            if len(chosen) == vip.replicas:
                break
        if len(chosen) != vip.replicas:
            raise InfeasibleError(
                f"cannot place VIP {vip.name} (share={share:.1f}, "
                f"rules={vip.rules}): only {len(chosen)}/{vip.replicas} fit"
            )
        # migration accounting (Eq. 6-7)
        if limit_mode and problem.old_connections:
            lost = [n for n in old if n not in chosen]
            moved = sum(
                (problem.old_connections or {}).get((vip.name, n), 0.0) for n in lost
            )
            migrated += moved
            if migrated > migration_budget + 1e-9:
                raise InfeasibleError(
                    f"migration budget exceeded placing VIP {vip.name}: "
                    f"{migrated:.0f} > {migration_budget:.0f} connections"
                )
        mapping[vip.name] = chosen
        # the VIP's old contribution elsewhere remains (transient) -- but
        # where it stays assigned, drop the double count, keeping max(old,new)
        if limit_mode:
            for name in chosen:
                st = states[name]
                extra_old = st.old_traffic_by_vip.pop(vip.name, 0.0)
                # we added `share` and previously counted `extra_old`;
                # transient should be max(old, new)
                st.traffic -= 0.0  # new share stays in .traffic
                if extra_old > share:
                    # keep the excess as residual old traffic
                    st.old_traffic_by_vip[vip.name] = extra_old - share

    return Assignment(
        mapping=mapping, solver="greedy",
        solve_seconds=time.perf_counter() - start,
    )


def compact_assignment(
    problem: AssignmentProblem,
    assignment: Assignment,
    enforce_update_constraints: bool = True,
    max_iterations: int = 40,
) -> Assignment:
    """Iteratively close the least-loaded instance and re-pack.

    This is how the greedy solver approximates the ILP objective: an
    initial feasible packing is squeezed by evicting the emptiest
    instance and re-solving with the remaining pool, until that fails or
    stops helping.  All constraints (including the migration budget in
    limit mode) are re-checked by the inner solve.
    """
    best = assignment
    for _ in range(max_iterations):
        traffic = best.traffic_per_instance(problem)
        used = sorted(best.instances_used(), key=lambda n: traffic.get(n, 0.0))
        if len(used) <= 1:
            break
        victim = used[0]
        reduced = AssignmentProblem(
            vips=problem.vips,
            instances=[i for i in problem.instances if i.name != victim],
            old_assignment=problem.old_assignment,
            old_connections=problem.old_connections,
            migration_limit=problem.migration_limit,
        )
        pinned = {
            vip: [n for n in insts if n != victim]
            for vip, insts in best.mapping.items()
        }
        try:
            candidate = solve_greedy(
                reduced,
                enforce_update_constraints=enforce_update_constraints,
                pinned=pinned,
            )
        except InfeasibleError:
            break
        if candidate.num_instances_used() < best.num_instances_used():
            best = candidate
        else:
            break
    return best
