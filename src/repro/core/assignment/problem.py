"""Problem and solution data types for VIP assignment (paper Table 2)."""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import AssignmentError


@dataclass(frozen=True)
class VipSpec:
    """One VIP's demand (paper notation in parentheses).

    Attributes:
        name: VIP identifier.
        traffic: total traffic t_v (arbitrary units, same as capacity).
        rules: number of L7 rules r_v.
        replicas: n_v, instances this VIP must be assigned to.
        oversub: o_v, fraction of the VIP's instances whose failure must
            not overload the rest; f_v = floor(n_v * o_v).
    """

    name: str
    traffic: float
    rules: int
    replicas: int
    oversub: float = 0.25

    def __post_init__(self) -> None:
        if self.traffic < 0 or self.rules < 0:
            raise AssignmentError(f"negative demand for VIP {self.name}")
        if self.replicas < 1:
            raise AssignmentError(f"VIP {self.name} needs replicas >= 1")
        if not 0.0 <= self.oversub < 1.0:
            raise AssignmentError(f"oversub must be in [0, 1), got {self.oversub}")

    @property
    def failures_tolerated(self) -> int:
        """f_v = n_v * o_v, capped so at least one instance survives."""
        return min(int(self.replicas * self.oversub), self.replicas - 1)

    @property
    def per_instance_share(self) -> float:
        """Traffic each assigned instance must be able to absorb after f_v
        failures: t_v / (n_v - f_v)  (Eq. 1's left side per VIP)."""
        return self.traffic / (self.replicas - self.failures_tolerated)


@dataclass(frozen=True)
class InstanceSpec:
    """One YODA instance's capacity: traffic T_y and rule memory R_y."""

    name: str
    traffic_capacity: float
    rule_capacity: int

    def __post_init__(self) -> None:
        if self.traffic_capacity <= 0 or self.rule_capacity <= 0:
            raise AssignmentError(f"instance {self.name} needs positive capacities")


@dataclass
class AssignmentProblem:
    """The full input of Figure 7.

    ``old_assignment`` / ``old_connections`` / ``migration_limit`` encode
    the update constraints (Eq. 4-7); leave them None for a from-scratch
    solve (YODA-no-limit behaves as if they were None).
    """

    vips: List[VipSpec]
    instances: List[InstanceSpec]
    old_assignment: Optional[Dict[str, List[str]]] = None
    old_connections: Optional[Dict[Tuple[str, str], float]] = None
    migration_limit: Optional[float] = None  # delta: max fraction migrated

    def __post_init__(self) -> None:
        names = [v.name for v in self.vips]
        if len(set(names)) != len(names):
            raise AssignmentError("duplicate VIP names")
        inames = [i.name for i in self.instances]
        if len(set(inames)) != len(inames):
            raise AssignmentError("duplicate instance names")
        for vip in self.vips:
            if vip.replicas > len(self.instances):
                raise AssignmentError(
                    f"VIP {vip.name} wants {vip.replicas} replicas but only "
                    f"{len(self.instances)} instances exist"
                )

    def vip(self, name: str) -> VipSpec:
        for v in self.vips:
            if v.name == name:
                return v
        raise AssignmentError(f"unknown VIP {name!r}")

    def instance(self, name: str) -> InstanceSpec:
        for i in self.instances:
            if i.name == name:
                return i
        raise AssignmentError(f"unknown instance {name!r}")

    def total_traffic(self) -> float:
        return sum(v.traffic for v in self.vips)

    def total_connections(self) -> float:
        if not self.old_connections:
            return 0.0
        return sum(self.old_connections.values())

    def old_share(self, vip_name: str, inst_name: str) -> float:
        """Traffic instance ``inst_name`` carries for the VIP under the old
        assignment (0 if not previously assigned)."""
        if not self.old_assignment:
            return 0.0
        assigned = self.old_assignment.get(vip_name, [])
        if inst_name not in assigned:
            return 0.0
        vip = self.vip(vip_name)
        f_old = min(int(len(assigned) * vip.oversub), len(assigned) - 1)
        return vip.traffic / max(len(assigned) - f_old, 1)


@dataclass
class Assignment:
    """A solution: VIP -> instance names."""

    mapping: Dict[str, List[str]]
    solver: str = ""
    solve_seconds: float = 0.0

    def instances_used(self) -> List[str]:
        used = set()
        for assigned in self.mapping.values():
            used.update(assigned)
        return sorted(used)

    def num_instances_used(self) -> int:
        return len(self.instances_used())

    def rules_per_instance(self, problem: AssignmentProblem) -> Dict[str, int]:
        out: Dict[str, int] = {i.name: 0 for i in problem.instances}
        for vip_name, assigned in self.mapping.items():
            rules = problem.vip(vip_name).rules
            for inst in assigned:
                out[inst] += rules
        return {k: v for k, v in out.items() if k in set(self.instances_used())}

    def traffic_per_instance(self, problem: AssignmentProblem) -> Dict[str, float]:
        out: Dict[str, float] = {}
        for vip_name, assigned in self.mapping.items():
            vip = problem.vip(vip_name)
            f_v = min(int(len(assigned) * vip.oversub), len(assigned) - 1)
            share = vip.traffic / max(len(assigned) - f_v, 1)
            for inst in assigned:
                out[inst] = out.get(inst, 0.0) + share
        return out

    def migrated_connections(self, problem: AssignmentProblem) -> float:
        """Connections whose (vip, instance) pair disappears (Eq. 6's sum)."""
        if not problem.old_assignment or not problem.old_connections:
            return 0.0
        moved = 0.0
        for (vip_name, inst_name), conns in problem.old_connections.items():
            if inst_name not in self.mapping.get(vip_name, []):
                moved += conns
        return moved

    def migrated_fraction(self, problem: AssignmentProblem) -> float:
        total = problem.total_connections()
        if total <= 0:
            return 0.0
        return self.migrated_connections(problem) / total
