"""Explicit validation of the Figure 7 constraints (Eq. 1-7).

Because the ILP is solved approximately here (LP relaxation + rounding
instead of CPLEX), every produced assignment is checked against the exact
constraints; the experiments also use this module to *measure* violations
(e.g. Fig. 16(d): how many instances a no-limit update transiently
overloads).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.core.assignment.problem import Assignment, AssignmentProblem


@dataclass
class ConstraintReport:
    """Outcome of validating one assignment."""

    ok: bool
    violations: List[str] = field(default_factory=list)
    overloaded_steady: List[str] = field(default_factory=list)  # Eq. 1 or 2
    overloaded_transient: List[str] = field(default_factory=list)  # Eq. 4-5
    migrated_fraction: float = 0.0

    def __bool__(self) -> bool:
        return self.ok


def validate_assignment(
    problem: AssignmentProblem,
    assignment: Assignment,
    check_transient: bool = True,
    check_migration: bool = True,
) -> ConstraintReport:
    report = ConstraintReport(ok=True)
    inst_traffic: Dict[str, float] = {i.name: 0.0 for i in problem.instances}
    inst_rules: Dict[str, int] = {i.name: 0 for i in problem.instances}

    # Eq. 3: exactly n_v instances per VIP
    for vip in problem.vips:
        assigned = assignment.mapping.get(vip.name, [])
        if len(assigned) != vip.replicas:
            report.ok = False
            report.violations.append(
                f"Eq3: VIP {vip.name} assigned {len(assigned)} != n_v={vip.replicas}"
            )
        if len(set(assigned)) != len(assigned):
            report.ok = False
            report.violations.append(f"VIP {vip.name} has duplicate instances")
        for inst in assigned:
            if inst not in inst_traffic:
                report.ok = False
                report.violations.append(
                    f"VIP {vip.name} assigned to unknown instance {inst}"
                )
                continue
            inst_traffic[inst] += vip.per_instance_share
            inst_rules[inst] += vip.rules

    # Eq. 1 / Eq. 2: steady-state capacity
    for inst in problem.instances:
        if inst_traffic[inst.name] > inst.traffic_capacity * (1 + 1e-9):
            report.ok = False
            report.overloaded_steady.append(inst.name)
            report.violations.append(
                f"Eq1: {inst.name} traffic {inst_traffic[inst.name]:.1f} "
                f"> T_y={inst.traffic_capacity:.1f}"
            )
        if inst_rules[inst.name] > inst.rule_capacity:
            report.ok = False
            report.overloaded_steady.append(inst.name)
            report.violations.append(
                f"Eq2: {inst.name} rules {inst_rules[inst.name]} "
                f"> R_y={inst.rule_capacity}"
            )

    # Eq. 4-5: transient load during the non-atomic mapping switch --
    # an instance may simultaneously see old-mapping and new-mapping traffic.
    # Instances already over capacity from old traffic alone are reported
    # but cannot fail validation: no new assignment can fix them (the paper
    # makes the same observation about Fig. 16(d): "the instances that were
    # overloaded in YODA-limit were already overloaded before starting the
    # new round").
    if check_transient and problem.old_assignment:
        preexisting = set()
        for inst in problem.instances:
            old_only = sum(
                problem.old_share(vip.name, inst.name) for vip in problem.vips
            )
            if old_only > inst.traffic_capacity * (1 + 1e-9):
                preexisting.add(inst.name)
            transient = 0.0
            for vip in problem.vips:
                new_share = (
                    vip.per_instance_share
                    if inst.name in assignment.mapping.get(vip.name, [])
                    else 0.0
                )
                old_share = problem.old_share(vip.name, inst.name)
                transient += max(new_share, old_share)
            if transient > inst.traffic_capacity * (1 + 1e-9):
                report.overloaded_transient.append(inst.name)
        avoidable = [n for n in report.overloaded_transient if n not in preexisting]
        if avoidable and problem.migration_limit is not None:
            report.ok = False
            report.violations.append(f"Eq4-5: transient overload on {avoidable}")

    # Eq. 6-7: bounded connection migration
    if check_migration and problem.old_connections:
        report.migrated_fraction = assignment.migrated_fraction(problem)
        if (
            problem.migration_limit is not None
            and report.migrated_fraction > problem.migration_limit + 1e-9
        ):
            report.ok = False
            report.violations.append(
                f"Eq6-7: migrated {report.migrated_fraction:.1%} "
                f"> delta={problem.migration_limit:.1%}"
            )

    return report


def transient_overloaded_instances(
    problem: AssignmentProblem, assignment: Assignment
) -> List[str]:
    """Instances whose transient (old+new max) load exceeds capacity --
    what Fig. 16(d) counts for the no-limit variant."""
    report = validate_assignment(problem, assignment, check_migration=False)
    return report.overloaded_transient
