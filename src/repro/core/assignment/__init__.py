"""VIP-to-instance assignment (paper Sections 4.4-4.5, Figure 7).

The controller periodically solves: minimize the number of YODA instances
used, subject to per-instance traffic capacity after f_v failures (Eq. 1),
rule-memory capacity (Eq. 2), exactly n_v replicas per VIP (Eq. 3),
bounded transient load while the non-atomic L4 update is in flight
(Eq. 4-5), and a cap on connections forced to migrate (Eq. 6-7).

Three solvers:

- :func:`~repro.core.assignment.all_to_all.solve_all_to_all` -- the paper's
  baseline: every VIP on every instance (fewest instances, most rules).
- :func:`~repro.core.assignment.greedy.solve_greedy` -- first-fit
  decreasing with migration awareness; always available, fast.
- :class:`~repro.core.assignment.ilp.IlpSolver` -- the Figure 7 ILP via LP
  relaxation (scipy/HiGHS) + rounding + greedy repair (the paper used
  CPLEX with a 10% optimality gap; we substitute and validate Eq. 1-7
  explicitly).
"""

from repro.core.assignment.all_to_all import solve_all_to_all
from repro.core.assignment.constraints import ConstraintReport, validate_assignment
from repro.core.assignment.exact import solve_exact
from repro.core.assignment.greedy import solve_greedy
from repro.core.assignment.ilp import IlpSolver
from repro.core.assignment.problem import (
    Assignment,
    AssignmentProblem,
    InstanceSpec,
    VipSpec,
)
from repro.core.assignment.update import UpdateOutcome, plan_update

__all__ = [
    "VipSpec",
    "InstanceSpec",
    "AssignmentProblem",
    "Assignment",
    "solve_all_to_all",
    "solve_greedy",
    "solve_exact",
    "IlpSolver",
    "validate_assignment",
    "ConstraintReport",
    "plan_update",
    "UpdateOutcome",
]
