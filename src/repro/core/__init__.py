"""YODA: the paper's primary contribution.

The pieces map one-to-one onto the paper's Figure 8:

- :class:`~repro.core.instance.YodaInstance` -- the packet driver: raw
  packet handling for the connection phase (SYN-ACK from a hashed ISN,
  header collection, server selection), L3 tunneling with sequence-number
  translation, and failure recovery from TCPStore.
- :class:`~repro.core.tcpstore.TcpStore` -- the flow-state schema over the
  replicating Memcached client.
- :mod:`~repro.core.rules` / :mod:`~repro.core.policy` -- the OpenFlow-like
  match/action/priority interface of Section 5.1.
- :class:`~repro.core.controller.YodaController` -- monitor (600 ms health
  pings), assignment updater, scaling, and policy distribution.
- :mod:`~repro.core.assignment` -- the VIP-to-instance ILP of Figure 7 and
  its all-to-all / greedy baselines.
"""

from repro.core.controller import YodaController
from repro.core.flowstate import FlowPhase, FlowState
from repro.core.inspect import DeploymentSnapshot, snapshot
from repro.core.instance import YodaCostModel, YodaInstance
from repro.core.policy import VipPolicy, least_loaded, primary_backup, sticky_sessions, weighted_split
from repro.core.rules import Action, Match, Rule
from repro.core.selector import RuleTable, SelectionResult
from repro.core.service import YodaService
from repro.core.tcpstore import TcpStore

__all__ = [
    "YodaInstance",
    "YodaCostModel",
    "YodaController",
    "YodaService",
    "TcpStore",
    "FlowState",
    "FlowPhase",
    "snapshot",
    "DeploymentSnapshot",
    "Rule",
    "Match",
    "Action",
    "RuleTable",
    "SelectionResult",
    "VipPolicy",
    "weighted_split",
    "primary_backup",
    "sticky_sessions",
    "least_loaded",
]
