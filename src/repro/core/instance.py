"""The YODA instance: a user-level packet driver (paper Sections 4 and 6).

An instance never owns an end-to-end TCP connection.  It:

1. **Connection phase** -- answers a client SYN with a SYN-ACK whose
   sequence number is a hash of the client's IP:port (so every instance
   would answer identically), *after* persisting the client SYN to
   TCPStore (storage-a); collects the HTTP header; selects a backend via
   the rule table; opens the backend connection *reusing the client's
   initial sequence number* so client->server packets never need sequence
   rewriting; persists the server connection (storage-b) *before* ACKing
   the backend's SYN-ACK.
2. **Tunneling phase** -- rewrites addresses and translates server->client
   sequence numbers by the constant C - S (Figure 4); TCP congestion
   control stays at the endpoints.
3. **Recovery** -- packets for flows it has never seen trigger a TCPStore
   lookup (by client 4-tuple for client-side packets, by VIP SNAT port for
   server-side packets); the retrieved state is enough to resume
   forwarding mid-flow, which is the paper's headline mechanism.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.flowstate import FlowPhase, FlowState, yoda_isn
from repro.core.policy import VipPolicy
from repro.core.selector import AllHealthy, BackendView, RuleTable, ScanCostModel
from repro.core.tcpstore import TcpStore
from repro.errors import SlowClientTimeout, SnatExhausted
from repro.http import tls
from repro.http.server import STREAM_PATH_PREFIX
from repro.http.message import HttpRequest
from repro.http.parser import HttpParser
from repro.net.addresses import Endpoint
from repro.net.host import Host
from repro.net.packet import ACK, FIN, RST, SYN, Packet
from repro.obs import OBS
from repro.qos.config import QosConfig
from repro.qos.plane import InstanceQos
from repro.sim.cpu import CpuModel
from repro.sim.events import EventLoop
from repro.sim.metrics import MetricRegistry
from repro.sim.process import PeriodicTask, Timer
from repro.sim.random import SeededRng
from repro.tcp.segment import seq_add, seq_diff

DEFAULT_SNAT_RANGE = (40000, 41000)
SERVER_SYN_RTO = 3.0
SERVER_SYN_RETRIES = 3
# How long a freshly-draining instance still ACCEPTS new SYNs.  The
# drain-start mapping push needs one propagation round-trip to pull this
# instance out of every mux ring; a SYN ring-routed here in that window
# was sent by a client who could not have known better, and refusing it
# costs them a full client SYN-RTO (3 s -- an SLO miss by itself).
# Flows are short next to the forced-drain deadline, so the handful
# admitted here finish long before the drain turns forced.
DRAIN_SYN_GRACE = 0.5
FLOW_LINGER = 1.0
FLOW_IDLE_TIMEOUT = 120.0
# A flow that has moved no packets for this long stops claiming its
# TCPStore records as durable state (see durable_records): after a false
# failure detection bounces a flow to another instance and back, the
# bypassed instance keeps a recovered copy that never sees another packet
# -- it must not keep the records "owned" (tripping the replication
# monitor) or re-replicate them after the real owner's clean-close delete.
DURABLE_STALE_HORIZON = 2.0
MSS = 1460
CERT_RETRANSMIT = 0.5
# Long-lived (streaming) flows checkpoint their client-acknowledged
# response watermark to TCPStore every this-many bytes of progress, so a
# takeover after the backend died too can resume the stream.
CHECKPOINT_BYTES = 32_768


@dataclass
class YodaCostModel:
    """Per-instance cost calibration.

    ``packet_cpu_*`` drive utilization/saturation (Section 7.1: a YODA
    instance saturates around 12K small req/s -- roughly 2x HAProxy's CPU,
    attributed to user/kernel packet copies).  ``packet_latency`` is the
    per-packet processing delay of the user-space nfqueue driver.
    ``scan_cpu_per_rule`` is the CPU side of rule scanning; its latency
    side lives in :class:`~repro.core.selector.ScanCostModel`.
    """

    packet_cpu_base: float = 4.0e-6
    packet_cpu_per_byte: float = 1.5e-9
    packet_latency: float = 4.0e-4
    scan_cpu_base: float = 5.0e-6
    scan_cpu_per_rule: float = 5.0e-8

    def packet_cost(self, pkt: Packet) -> float:
        return self.packet_cpu_base + self.packet_cpu_per_byte * pkt.wire_len


class _LocalFlow:
    """In-memory flow record; everything durable lives in ``state``."""

    __slots__ = (
        "state", "phase", "parser", "parsed", "request", "req_chunks", "req_assembled",
        "syn_stored", "storage_b_inflight", "fin_client", "fin_server",
        "syn_timer", "syn_tries", "last_seen", "cleanup_scheduled",
        "recovered", "t_syn", "t_synack", "t_header", "t_server_syn",
        "t_established", "policy_version", "forwarded_req_bytes",
        "parsed_bytes", "requests_seen", "resp_high",
        "tls", "tls_codec", "tls_records", "tls_hello_done",
        "resp_out", "resp_acked", "cert_timer", "obs_ctx", "obs_spans",
        "qos_slot", "backend_name",
        "long_lived", "resumed_stream", "client_acked",
        "tls_sni", "tls_resumed", "tls_ticket_issued",
    )

    def __init__(self, state: FlowState, now: float):
        self.state = state
        self.phase = FlowPhase(state.phase)
        self.parser = HttpParser("request")
        self.parsed: List[HttpRequest] = []  # complete requests seen so far
        self.request: Optional[HttpRequest] = None
        self.req_chunks: Dict[int, bytes] = {}  # offset -> payload
        self.req_assembled = bytearray()  # contiguous prefix of request bytes
        self.syn_stored = False
        self.storage_b_inflight = False
        self.fin_client = False
        self.fin_server = False
        self.syn_timer: Optional[Timer] = None
        self.syn_tries = 0
        self.last_seen = now
        self.cleanup_scheduled = False
        self.recovered = False
        self.t_syn = now
        self.t_synack = 0.0
        self.t_header = 0.0
        self.t_server_syn = 0.0
        self.t_established = 0.0
        self.policy_version = 0
        self.forwarded_req_bytes = 0
        self.parsed_bytes = 0  # wire bytes consumed by completed requests
        # requests handled so far; None disables HTTP/1.1 backend switching
        # (set after recovery, when the request parser lost its context)
        self.requests_seen: Optional[int] = 0
        self.resp_high = 0  # response bytes of the CURRENT backend delivered
        # SSL termination (Section 5.2)
        self.tls = False
        self.tls_codec: Optional[tls.TlsCodec] = None
        self.tls_records: List = []
        self.tls_hello_done = False
        self.resp_out = b""  # instance-originated bytes (the cert flight)
        self.resp_acked = 0
        self.cert_timer: Optional[Timer] = None
        # observability: the client's trace context and this flow's open
        # spans, keyed by stage name (None while the plane is disabled)
        self.obs_ctx = None
        self.obs_spans: Optional[Dict[str, object]] = None
        # overload-control bookkeeping: whether this flow holds a
        # concurrency-limiter slot, and which backend (by rule-table name)
        # it is connected to -- None for recovered flows, whose connect
        # outcome says nothing about backend health from here
        self.qos_slot = False
        self.backend_name: Optional[str] = None
        # long-lived streaming flows (paths under /stream/): checkpointed
        # progress + dead-backend resume bookkeeping
        self.long_lived = False
        self.resumed_stream = False  # replaying from a replacement backend
        self.client_acked = 0  # response bytes the client has ACKed (stream coords)
        # TLS session resumption (tickets keyed in the flow store)
        self.tls_sni = ""
        self.tls_resumed = False
        self.tls_ticket_issued = False

    def key(self) -> str:
        return f"{self.state.client}|{self.state.vip}"

    def buffer_request_bytes(self, offset: int, payload: bytes) -> None:
        """Accumulate client request bytes by stream offset, feeding the
        parser only with never-seen contiguous bytes."""
        if offset < 0:
            return
        have = len(self.req_assembled)
        if offset > have:
            self.req_chunks[offset] = payload
            return
        fresh = payload[have - offset:]
        if fresh:
            self.req_assembled.extend(fresh)
            self._feed(fresh)
        # drain any chunks made contiguous
        while self.req_chunks:
            have = len(self.req_assembled)
            chunk = self.req_chunks.pop(have, None)
            if chunk is None:
                nxt = min(self.req_chunks)
                if nxt > have:
                    break
                chunk = self.req_chunks.pop(nxt)
                chunk = chunk[have - nxt:]
            if chunk:
                self.req_assembled.extend(chunk)
                self._feed(chunk)

    def _feed(self, data: bytes) -> None:
        if self.tls:
            self.tls_records.extend(self.tls_codec.feed(data))
            return
        for item in self.parser.feed(data):
            # remember where each request started in the client stream so a
            # backend switch can re-base sequence numbers (Section 5.2)
            self.parsed.append((item.message, self.parsed_bytes))
            self.parsed_bytes += item.wire_bytes

    def enable_tls(self) -> None:
        self.tls = True
        self.tls_codec = tls.TlsCodec()
        self.requests_seen = None  # backend switching is HTTP-only

    def header_ready(self) -> bool:
        """True once the (first unconsumed) request header has arrived."""
        return bool(self.parsed) or self.parser.header_complete()


def flow_key(client: Endpoint, vip: Endpoint) -> str:
    return f"{client}|{vip}"


class YodaInstance:
    """One YODA LB VM."""

    def __init__(
        self,
        host: Host,
        loop: EventLoop,
        rng: SeededRng,
        tcpstore: TcpStore,
        cost_model: Optional[YodaCostModel] = None,
        scan_cost_model: Optional[ScanCostModel] = None,
        l4lb=None,
        qos_config: Optional[QosConfig] = None,
        header_deadline: Optional[float] = None,
        stateless: bool = False,
    ):
        self.host = host
        self.loop = loop
        self.rng = rng.fork(f"yoda/{host.name}")
        self.tcpstore = tcpstore
        # stateless fast path: skip every durable TCPStore write (storage
        # a/b, checkpoints, tickets, deletes).  Flows keep their in-memory
        # state and SNAT ports, but nothing survives this VM -- the mode's
        # deliberate tradeoff, demonstrated by the chaos ablation.
        self.stateless = stateless
        self.cost = cost_model or YodaCostModel()
        self.scan_cost_model = scan_cost_model or ScanCostModel()
        self.l4lb = l4lb
        self.cpu = CpuModel(loop, owner=host.name)
        self.metrics = MetricRegistry(host.name)
        self.backend_view: BackendView = AllHealthy()
        self.qos: Optional[InstanceQos] = (
            InstanceQos(qos_config, loop.now, self.metrics, host.name)
            if qos_config is not None else None
        )
        self.draining = False
        self._drain_started: float = 0.0
        # receiver-side stale-leader rejection (core.leader.FenceGate),
        # attached by YodaService when the control plane is replicated;
        # None (the single-controller default) admits every control call
        self.fence = None

        self.policies: Dict[str, VipPolicy] = {}
        self._tables: Dict[str, Tuple[int, RuleTable]] = {}
        self.flows: Dict[str, _LocalFlow] = {}
        self.by_server: Dict[Tuple[str, int], str] = {}  # (server_ep, snat_port) -> flow key
        self._recovering_c: Dict[str, List[Packet]] = {}
        self._recovering_s: Dict[Tuple[str, int], List[Packet]] = {}
        self._snat_next: Dict[str, int] = {}
        self._snat_in_use: Dict[str, set] = {}
        self.vip_bytes: Dict[str, int] = {}
        self.completed_flows = 0

        host.set_handler(self._on_packet_raw)
        self._gc = PeriodicTask(loop, 30.0, self._collect_idle_flows)
        self._gc.start()

        # slow-loris guard: flows must produce a complete header within
        # this budget of their SYN or be reset (None = off, the default --
        # pinned traces construct no timer and see no behaviour change)
        self.header_deadline = header_deadline
        self.slow_clients: List[SlowClientTimeout] = []
        self._loris_guard: Optional[PeriodicTask] = None
        if header_deadline is not None:
            self._loris_guard = PeriodicTask(
                loop, max(header_deadline / 2.0, 0.05),
                self._enforce_header_deadline,
            )
            self._loris_guard.start()

    # ------------------------------------------------------------- lifecycle --
    @property
    def name(self) -> str:
        return self.host.name

    @property
    def ip(self) -> str:
        return self.host.ip

    def fail(self) -> None:
        """Crash the VM: the network drops its traffic and, crucially, all
        local flow state is gone (only TCPStore survives)."""
        self.host.fail()
        for flow in self.flows.values():
            if flow.syn_timer is not None:
                flow.syn_timer.cancel()
            if flow.cert_timer is not None:
                flow.cert_timer.cancel()
            self._release_qos_slot(flow)
        self.flows.clear()
        self.by_server.clear()
        self._recovering_c.clear()
        self._recovering_s.clear()

    def recover(self) -> None:
        self.host.recover()

    def _enforce_header_deadline(self) -> None:
        """Slow-loris guard: reset any flow still without a complete
        request header ``header_deadline`` seconds after its SYN.  The
        budget is total time in the header phase, not idle time -- a
        classic slow-loris client trickles a byte at a time and would
        never trip an idle check."""
        if self.host.failed or self.header_deadline is None:
            return
        now = self.loop.now()
        for flow in list(self.flows.values()):
            if flow.phase is not FlowPhase.AWAIT_HEADER:
                continue
            if now - flow.t_syn <= self.header_deadline:
                continue
            self.slow_clients.append(
                SlowClientTimeout(str(flow.state.client), self.header_deadline))
            self.metrics.counter("slow_client_timeouts").inc()
            if OBS.enabled:
                OBS.flight(self.name, "slow_client_timeout", flow.key())
            self._send(Packet(
                src=flow.state.vip, dst=flow.state.client, flags=RST | ACK,
                seq=flow.state.yoda_isn,
                ack=seq_add(flow.state.client_isn, 1),
            ))
            self._destroy_flow(flow, remove_stored=True)

    def _admit(self, token, kind: str) -> None:
        if self.fence is not None:
            self.fence.admit(token, kind, self.loop.now())

    # -------------------------------------------------------------- draining --
    def start_drain(self, token=None) -> None:
        """Stop admitting new connections; existing flows keep running.

        The controller pairs this with pulling the instance from the mux
        hash rings, so refused SYNs are retransmitted onto a live
        instance (make-before-break scale-in, DESIGN.md section 7).
        """
        self._admit(token, "start_drain")
        self.draining = True
        self._drain_started = self.loop.now()

    def release_flows(self, token=None) -> None:
        """Forget all local flow state WITHOUT deleting the TCPStore
        records: the deadline-forced half of a drain.  Surviving flows
        recover on whichever instance the mux re-hashes their next packet
        to -- the paper's failover path, exercised deliberately."""
        self._admit(token, "release_flows")
        for flow in list(self.flows.values()):
            state = flow.state
            if (flow.long_lived and state.established and not self.host.failed
                    and not self.stateless):
                # serialize the stream's progress before letting go, so the
                # adopting instance resumes the download instead of
                # replaying it from byte zero (or stalling on a dead
                # backend with no watermark)
                if flow.client_acked > state.resp_delivered:
                    state.resp_delivered = flow.client_acked
                self.metrics.counter("handoff_checkpoints").inc()
                self.tcpstore.checkpoint(state)
            if flow.syn_timer is not None:
                flow.syn_timer.cancel()
            if flow.cert_timer is not None:
                flow.cert_timer.cancel()
            if OBS.enabled and flow.obs_spans is not None:
                for name in ("storage_a", "storage_b", "server_connect",
                             "rule_scan"):
                    self._obs_end(flow, name, ok=False)
                self._obs_end(flow, "flow", completed=False, handed_off=True)
            self._release_qos_slot(flow)
        self.flows.clear()
        self.by_server.clear()
        self._recovering_c.clear()
        self._recovering_s.clear()
        for in_use in self._snat_in_use.values():
            in_use.clear()

    # ---------------------------------------------------------------- policy --
    def install_policy(self, policy: VipPolicy, token=None) -> None:
        """Install/refresh a VIP's rules.  Only new connections see the new
        version (Section 5.2): existing flows already carry their backend.
        """
        self._admit(token, "install_policy")
        self.policies[policy.vip] = policy
        self._tables[policy.vip] = (
            policy.version,
            RuleTable(policy.rules, self.scan_cost_model),
        )
        self.vip_bytes.setdefault(policy.vip, 0)

    def remove_policy(self, vip: str, token=None) -> None:
        self._admit(token, "remove_policy")
        self.policies.pop(vip, None)
        self._tables.pop(vip, None)

    def rule_count(self) -> int:
        return sum(p.rule_count for p in self.policies.values())

    def read_and_reset_traffic(self) -> Dict[str, int]:
        """Controller hook: per-VIP bytes since the last read."""
        out = dict(self.vip_bytes)
        for vip in self.vip_bytes:
            self.vip_bytes[vip] = 0
        return out

    def durable_records(self) -> List[Tuple[str, bytes, object]]:
        """(key, payload, version) for every TCPStore record this
        instance's live flows rely on -- the anti-entropy sweeper's work
        list.  Closing flows are excluded (their records are being deleted)
        and so are records whose initial write has not completed yet (the
        in-flight storage op already targets the current replica set) or
        whose version was already dropped by a delete (a finished flow
        lingering in the table owns nothing durable anymore).  Flows quiet
        past DURABLE_STALE_HORIZON are excluded too: a copy stranded here
        by a transient misrouting may already be closed (and deleted) at
        its real owner, and resurrecting its records would be wrong."""
        out: List[Tuple[str, bytes, object]] = []
        if self.stateless:
            return out  # nothing durable exists for this instance's flows
        now = self.loop.now()
        for flow in self.flows.values():
            if flow.phase is FlowPhase.CLOSING:
                continue
            if now - flow.last_seen > DURABLE_STALE_HORIZON:
                continue
            state = flow.state
            payload: Optional[bytes] = None
            if flow.syn_stored:
                key = state.storage_key()
                version = self.tcpstore.version_of(key)
                if version is not None:
                    payload = state.to_bytes()
                    out.append((key, payload, version))
            if state.established and not flow.storage_b_inflight:
                skey = state.server_storage_key()
                if skey is not None:
                    version = self.tcpstore.version_of(skey)
                    if version is not None:
                        payload = payload if payload is not None else state.to_bytes()
                        out.append((skey, payload, version))
        return out

    # ------------------------------------------------------------- packet I/O --
    def _on_packet_raw(self, pkt: Packet) -> None:
        if pkt.meta.get("kv_resp") is not None:
            # Memcached client traffic is consumed by the embedded library
            self.tcpstore.kv.handle_response(pkt)
            return
        if pkt.meta.get("kv") is not None:
            return  # not a store server; ignore stray
        self.metrics.counter("packets_in").inc()
        self.cpu.execute(self.cost.packet_cost(pkt), self._after_cpu, pkt,
                         phase="packet")

    def _after_cpu(self, pkt: Packet) -> None:
        if self.host.failed:
            return
        self.loop.call_later(self.cost.packet_latency, self._dispatch, pkt)

    def _dispatch(self, pkt: Packet) -> None:
        if self.host.failed:
            return
        policy = self.policies.get(pkt.dst.ip)
        if policy is None:
            self.metrics.counter("no_policy_drop").inc()
            return
        if pkt.dst.port == policy.port:
            self._handle_client_packet(pkt, policy)
        else:
            self._handle_server_packet(pkt, policy)

    def _send(self, pkt: Packet) -> None:
        self.metrics.counter("packets_out").inc()
        self.host.send(pkt)

    # ---------------------------------------------------------- observability --
    # Purely passive span bookkeeping: stage spans start/end at exactly the
    # timestamps the legacy stage histograms observe, so Fig. 9 derived
    # from spans matches the histogram-based computation bit-for-bit.
    def _obs_flow_open(self, flow: _LocalFlow, ctx, recovered: bool = False) -> None:
        flow.obs_ctx = ctx
        span = OBS.tracer.start("yoda.flow", self.name, ctx=ctx,
                                attrs={"recovered": recovered} if recovered
                                else None)
        flow.obs_spans = {"flow": span}

    def _obs_start(self, flow: _LocalFlow, name: str):
        if flow.obs_spans is None:
            return None
        root = flow.obs_spans.get("flow")
        ctx = OBS.tracer.ctx_of(root) if root is not None else flow.obs_ctx
        span = OBS.tracer.start(name, self.name, ctx=ctx)
        flow.obs_spans[name] = span
        return span

    def _obs_end(self, flow: _LocalFlow, name: str, end=None, **attrs) -> None:
        if flow.obs_spans is None:
            return
        span = flow.obs_spans.pop(name, None)
        if span is not None:
            OBS.tracer.end(span, end=end, **attrs)

    # =========================================================== client side ==
    def _handle_client_packet(self, pkt: Packet, policy: VipPolicy) -> None:
        key = flow_key(pkt.src, pkt.dst)
        flow = self.flows.get(key)
        self.vip_bytes[policy.vip] = self.vip_bytes.get(policy.vip, 0) + pkt.wire_len

        if pkt.syn and not pkt.has_ack:
            self._handle_client_syn(key, pkt, flow)
            return
        if flow is None:
            # Unknown flow: recovery path.  Even a pure ACK matters -- a
            # client mid-download sends nothing else, and the backend needs
            # those ACKs forwarded to keep its send window moving.
            self._recover_by_client(key, pkt)
            return
        self._client_packet_on_flow(flow, pkt, policy)

    def _handle_client_syn(self, key: str, pkt: Packet,
                           flow: Optional[_LocalFlow]) -> None:
        if flow is not None:
            if flow.syn_stored:
                self._send_syn_ack(flow)  # duplicate SYN: deterministic reply
            return
        if (self.draining
                and self.loop.now() - self._drain_started > DRAIN_SYN_GRACE):
            # No new connections during make-before-break scale-in -- but
            # only once the drain push has had time to pull us from the
            # mux rings (DRAIN_SYN_GRACE).  After that, drop the SYN
            # silently: the client's retransmit re-hashes through the mux
            # ring, which no longer includes this instance.
            self.metrics.counter("syns_refused_draining").inc()
            if OBS.enabled:
                OBS.flight(self.name, "drain_refuse", str(pkt.src))
            return
        qos_slot = False
        if self.qos is not None:
            decision = self.qos.admit_syn(pkt.dst.ip, pkt.src.ip)
            if not decision.admitted:
                self._shed_syn(pkt, decision)
                return
            qos_slot = self.qos.limiter is not None
        state = FlowState(
            client=pkt.src, vip=pkt.dst, client_isn=pkt.seq,
            created_at=self.loop.now(),
        )
        flow = _LocalFlow(state, self.loop.now())
        flow.qos_slot = qos_slot
        policy = self.policies[pkt.dst.ip]
        if policy.certificate is not None:
            flow.enable_tls()
        flow.policy_version = policy.version
        self.flows[key] = flow
        self.metrics.counter("flows_opened").inc()
        t0 = self.loop.now()
        if OBS.enabled:
            self._obs_flow_open(flow, pkt.meta.get("obs_ctx"))
        if self.stateless:
            # stateless fast path: SYN-ACK immediately, no storage-a.
            # If this VM dies the flow is gone -- that is the bargain.
            self.metrics.counter("stateless_flows").inc()
            flow.syn_stored = True
            flow.t_synack = t0
            self._send_syn_ack(flow)
            return
        if OBS.enabled:
            OBS.ctx = OBS.tracer.ctx_of(self._obs_start(flow, "storage_a"))
        # storage-a MUST complete before the SYN-ACK leaves (Figure 3)
        self.tcpstore.store_client_syn(
            state, lambda ok: self._storage_a_done(key, ok, t0)
        )
        OBS.ctx = None

    def _storage_a_done(self, key: str, ok: bool, t0: float) -> None:
        flow = self.flows.get(key)
        if flow is None or self.host.failed:
            return
        if not ok:
            # cannot guarantee recoverability -> do not ACK; the client
            # will retransmit its SYN and we will try again.
            self.metrics.counter("storage_a_failed").inc()
            if OBS.enabled:
                self._obs_end(flow, "storage_a", ok=False)
                self._obs_end(flow, "flow", ok=False)
                OBS.flight(self.name, "storage_a_failed", key)
            self._release_qos_slot(flow)
            del self.flows[key]
            return
        self.metrics.histogram("storage_a_latency").observe(self.loop.now() - t0)
        if OBS.enabled:
            self._obs_end(flow, "storage_a", ok=True)
        flow.syn_stored = True
        flow.t_synack = self.loop.now()
        self._send_syn_ack(flow)

    def _shed_syn(self, pkt: Packet, decision) -> None:
        """Stateless SYN-stage rejection (load shedding).

        The RST's sequence number is the deterministic yoda ISN, so the
        reject is computed from the packet alone: no flow record, no
        TCPStore write, no SNAT port -- a shed connection costs the
        instance nothing but this one packet, which is what lets an
        overloaded instance keep shedding at line rate.
        """
        self.metrics.counter("syns_shed").inc()
        if OBS.enabled:
            OBS.flight(self.name, "shed",
                       f"{pkt.src} reason={decision.reason} "
                       f"tier={decision.tier}")
            ctx = pkt.meta.get("obs_ctx")
            if ctx is not None:
                OBS.tracer.event("qos.shed", self.name, ctx=ctx,
                                 attrs={"reason": decision.reason,
                                        "tier": decision.tier})
        self._send(Packet(
            src=pkt.dst, dst=pkt.src, flags=RST | ACK,
            seq=yoda_isn(pkt.src, pkt.dst), ack=seq_add(pkt.seq, 1),
        ))

    def _release_qos_slot(self, flow: _LocalFlow) -> None:
        if flow.qos_slot:
            flow.qos_slot = False
            self.qos.release_slot()

    def _selection_view(self) -> BackendView:
        """What rule scanning consults: controller health, intersected
        with this instance's circuit breakers when qos is armed."""
        if self.qos is not None:
            return self.qos.view(self.backend_view)
        return self.backend_view

    def _send_syn_ack(self, flow: _LocalFlow) -> None:
        state = flow.state
        self._send(Packet(
            src=state.vip, dst=state.client, flags=SYN | ACK,
            seq=state.yoda_isn, ack=seq_add(state.client_isn, 1),
        ))

    def _client_packet_on_flow(self, flow: _LocalFlow, pkt: Packet,
                               policy: VipPolicy) -> None:
        flow.last_seen = self.loop.now()
        state = flow.state
        if pkt.rst:
            if flow.phase is FlowPhase.TUNNEL and state.established:
                self._send(self._translate_to_server(flow, pkt))
            self._destroy_flow(flow, remove_stored=True)
            return
        if flow.resumed_stream and pkt.has_ack:
            # the client's cumulative ACK tells us exactly how much of the
            # replayed response it already holds; raise the suppression
            # point so the replacement backend is never stuck retransmitting
            # bytes whose ACKs (beyond its snd_nxt) it would ignore
            acked = seq_diff(pkt.ack, seq_add(state.yoda_isn, 1))
            sup = acked - state.response_offset
            if sup > state.tls_handshake_len:
                state.tls_handshake_len = sup
        if flow.phase in (FlowPhase.AWAIT_HEADER, FlowPhase.SERVER_SYN_SENT):
            if flow.tls and pkt.has_ack and flow.resp_out:
                # track how much of our certificate flight the client has
                acked = seq_diff(pkt.ack, seq_add(state.yoda_isn, 1))
                if acked > flow.resp_acked:
                    flow.resp_acked = min(acked, len(flow.resp_out))
                    if flow.resp_acked >= len(flow.resp_out) and flow.cert_timer:
                        flow.cert_timer.cancel()
            if pkt.payload:
                offset = seq_diff(pkt.seq, seq_add(state.client_isn, 1))
                flow.buffer_request_bytes(offset, pkt.payload)
                if flow.phase is FlowPhase.AWAIT_HEADER:
                    if flow.tls:
                        self._tls_progress(flow, policy)
                    elif flow.header_ready():
                        flow.t_header = self.loop.now()
                        self._select_and_connect(flow, policy)
            if pkt.fin:
                # client gave up before we even picked a server
                flow.fin_client = True
                self._destroy_flow(flow, remove_stored=True)
            return
        # tunneling phase: pure translation -- except that HTTP/1.1 lets
        # the client send further requests on the same connection, which
        # may match a different rule and need a different backend
        # (Section 5.2).  The stream keeps being parsed; a new request is
        # re-classified and, if needed, the backend is switched.
        if flow.phase in (FlowPhase.TUNNEL, FlowPhase.CLOSING):
            if flow.long_lived and pkt.has_ack:
                self._note_client_progress(flow, pkt)
            forward = True
            if pkt.payload and flow.requests_seen is not None:
                offset = seq_diff(pkt.seq, seq_add(state.client_isn, 1))
                flow.buffer_request_bytes(offset, pkt.payload)
                if len(flow.parsed) > flow.requests_seen:
                    flow.requests_seen = len(flow.parsed)
                    request, start_offset = flow.parsed[-1]
                    if self._maybe_switch_backend(flow, request,
                                                  start_offset, policy):
                        forward = False  # these bytes go to the new backend
            if pkt.fin:
                flow.fin_client = True
            if forward:
                self._send(self._translate_to_server(flow, pkt))
            self._maybe_finish(flow)

    # ------------------------------------------------- long-lived streaming --
    def _note_client_progress(self, flow: _LocalFlow, pkt: Packet) -> None:
        """Track the client's cumulative response ACK and checkpoint it to
        TCPStore every CHECKPOINT_BYTES of progress.  The watermark is
        client-*acknowledged* bytes (not merely forwarded ones), so a
        resume never suppresses bytes the client might not hold."""
        state = flow.state
        acked = seq_diff(pkt.ack, seq_add(state.yoda_isn, 1))
        if acked <= flow.client_acked:
            return
        flow.client_acked = acked
        if self.stateless:
            return  # progress is unrecoverable by design: no checkpoints
        if acked - state.resp_delivered < CHECKPOINT_BYTES:
            return
        state.resp_delivered = acked
        self.metrics.counter("stream_checkpoints").inc()
        if OBS.enabled:
            OBS.flight(self.name, "stream_checkpoint",
                       f"{flow.key()} acked={acked}")
        self.tcpstore.checkpoint(state)

    # ------------------------------------------------------ SSL termination --
    def _tls_progress(self, flow: _LocalFlow, policy: VipPolicy) -> None:
        """Drive the TLS state machine from the parsed client records."""
        state = flow.state
        while flow.tls_records:
            rtype, payload = flow.tls_records.pop(0)
            if rtype == tls.CLIENT_HELLO and not flow.tls_hello_done:
                flow.tls_hello_done = True
                # store-before-ACK: the certificate flight acknowledges the
                # hello, so the hello bytes must be recoverable first
                state.client_prefix = bytes(flow.req_assembled)
                sni, ticket = tls.parse_hello(payload)
                flow.tls_sni = sni
                if ticket is not None and policy.session_tickets:
                    # abbreviated handshake: validate the ticket against
                    # the flow store BEFORE committing a single response
                    # byte -- an accepted-then-unknown ticket would desync
                    # the backend's deterministic handshake replay
                    self.tcpstore.get_ticket(
                        ticket,
                        lambda v, t=ticket: self._tls_ticket_checked(
                            flow.key(), t, v),
                    )
                    continue
                t0 = self.loop.now()
                if self.stateless:
                    # no durable hello prefix: serve the flight directly
                    self._tls_prefix_stored(flow.key(), True, t0)
                    continue
                if OBS.enabled:
                    # second storage-a write of a TLS flow (the hello
                    # prefix); the slot was freed when the SYN write ended
                    span = self._obs_start(flow, "storage_a")
                    if span is not None:
                        OBS.ctx = OBS.tracer.ctx_of(span)
                self.tcpstore.store_client_syn(
                    state,
                    lambda ok: self._tls_prefix_stored(flow.key(), ok, t0),
                )
                OBS.ctx = None
            elif rtype == tls.RETRY_PING:
                # a stalled client nudging after a failover: resend from
                # the first unacked byte (client TCP discards duplicates)
                if flow.tls_hello_done and flow.resp_acked < len(flow.resp_out):
                    self._send_cert_flight(flow)
            elif rtype == tls.APP_DATA and flow.request is None:
                # decrypt the request header and select the backend
                request = self._parse_header_only(payload)
                if request is None:
                    parser = HttpParser("request")
                    msgs = parser.feed(payload)
                    request = msgs[0].message if msgs else None
                if request is not None:
                    flow.t_header = self.loop.now()
                    self._dispatch_selection(flow, policy, request)
            elif rtype == tls.KEY_EXCHANGE:
                # the key itself is derivable by all; after a *full*
                # handshake this is also where a session ticket is issued
                # (appended to the deterministic flight, mirrored by the
                # backend, and keyed into the flow store so resumption
                # survives instance and region failover)
                if (policy.session_tickets and not self.stateless
                        and not flow.tls_resumed
                        and not flow.tls_ticket_issued):
                    flow.tls_ticket_issued = True
                    ticket = tls.ticket_for(flow.tls_sni)
                    flow.resp_out += tls.session_ticket(ticket)
                    self.metrics.counter("tls_tickets_issued").inc()
                    self.tcpstore.put_ticket(ticket, flow.tls_sni)
                    self._send_cert_flight(flow)

    def _tls_ticket_checked(self, key: str, ticket: str,
                            value: Optional[bytes]) -> None:
        """Resolution of a resumption ticket lookup (abbreviated handshake)."""
        flow = self.flows.get(key)
        if flow is None or self.host.failed:
            return
        state = flow.state
        if value is None:
            # unknown ticket: refuse resumption outright.  The client falls
            # back to a full handshake on a fresh connection; accepting and
            # serving a certificate here would leave the backend (which
            # trusts ticket-bearing hellos) replaying a shorter flight than
            # the one we suppressed.
            self.metrics.counter("tls_tickets_rejected").inc()
            if OBS.enabled:
                OBS.flight(self.name, "tls_ticket_rejected", key)
            self._send(Packet(
                src=state.vip, dst=state.client, flags=RST | ACK,
                seq=state.yoda_isn,
                ack=seq_add(state.client_isn, 1 + len(flow.req_assembled)),
            ))
            self._destroy_flow(flow, remove_stored=True)
            return
        self.metrics.counter("tls_tickets_resumed").inc()
        if OBS.enabled:
            OBS.flight(self.name, "tls_ticket_resumed", key)
        flow.tls_resumed = True
        flow.resp_out = tls.session_ticket(ticket)
        # store-before-ACK still holds: persist the hello prefix, then send
        # the abbreviated flight (the stored prefix carrying a ticket is
        # what marks this flow as a validated resumption for recovery)
        t0 = self.loop.now()
        self.tcpstore.store_client_syn(
            state, lambda ok: self._tls_prefix_stored(key, ok, t0)
        )

    def _tls_prefix_stored(self, key: str, ok: bool, t0: float) -> None:
        flow = self.flows.get(key)
        if flow is None or self.host.failed:
            return
        if not ok:
            self.metrics.counter("storage_a_failed").inc()
            if OBS.enabled:
                self._obs_end(flow, "storage_a", ok=False)
            return  # client will retransmit the hello; we try again
        if not self.stateless:  # no zero-latency samples from the fast path
            self.metrics.histogram("storage_a_latency").observe(self.loop.now() - t0)
        if OBS.enabled:
            self._obs_end(flow, "storage_a", ok=True)
        policy = self.policies.get(flow.state.vip.ip)
        if policy is None or policy.certificate is None:
            return
        if not flow.resp_out:
            flow.resp_out = tls.certificate_flight(policy.certificate)
        self._send_cert_flight(flow)

    def _send_cert_flight(self, flow: _LocalFlow) -> None:
        """(Re)send the certificate from the first unacked byte; any
        instance produces identical bytes, so a resend after failover is
        transparent (Section 5.2)."""
        state = flow.state
        data = flow.resp_out[flow.resp_acked:]
        base = seq_add(state.yoda_isn, 1 + flow.resp_acked)
        ack = seq_add(state.client_isn, 1 + len(flow.req_assembled))
        for off in range(0, len(data), MSS):
            self._send(Packet(
                src=state.vip, dst=state.client, flags=ACK,
                seq=seq_add(base, off), ack=ack,
                payload=data[off:off + MSS],
            ))
        if flow.cert_timer is None:
            key = flow.key()
            flow.cert_timer = Timer(self.loop,
                                    lambda: self._cert_rto(key))
        flow.cert_timer.start(CERT_RETRANSMIT)

    def _resend_cert_if_alive(self, key: str) -> None:
        flow = self.flows.get(key)
        if flow is not None and flow.tls and not self.host.failed:
            self._send_cert_flight(flow)

    def _cert_rto(self, key: str) -> None:
        flow = self.flows.get(key)
        if flow is None or not flow.tls or self.host.failed:
            return
        if flow.resp_acked < len(flow.resp_out):
            self._send_cert_flight(flow)

    # ----------------------------------------------------- selection + connect --
    def _select_and_connect(self, flow: _LocalFlow, policy: VipPolicy) -> None:
        if flow.parsed:
            request = flow.parsed[0][0]
        else:
            # header complete but body still streaming: parse header only
            request = self._parse_header_only(bytes(flow.req_assembled))
            if request is None:
                return
        self._dispatch_selection(flow, policy, request)

    def _dispatch_selection(self, flow: _LocalFlow, policy: VipPolicy,
                            request: HttpRequest) -> None:
        """Classify a (possibly decrypted) request and start the backend
        connection after the rule-scan latency."""
        flow.request = request
        if request.path.startswith(STREAM_PATH_PREFIX) and not flow.tls:
            # a long-lived streaming download: checkpoint its progress and
            # keep enough context to re-select a backend after failures
            flow.long_lived = True
        if flow.requests_seen is not None:
            flow.requests_seen = max(1, len(flow.parsed))
        version, table = self._tables[policy.vip]
        flow.policy_version = version
        result = table.select(request, self.rng, self._selection_view())
        scan_cpu = self.cost.scan_cpu_base + self.cost.scan_cpu_per_rule * len(table)
        self.cpu.execute(scan_cpu, phase="rule_scan")
        if result is None:
            self.metrics.counter("no_backend").inc()
            self._send(Packet(src=flow.state.vip, dst=flow.state.client,
                              flags=RST | ACK, seq=flow.state.yoda_isn,
                              ack=seq_add(flow.state.client_isn, 1)))
            self._destroy_flow(flow, remove_stored=True)
            return
        self.metrics.histogram("scan_latency").observe(result.scan_latency)
        self.metrics.counter("selections").inc()
        if OBS.enabled:
            span = self._obs_start(flow, "rule_scan")
            if span is not None:
                # the scan's latency elapses via call_later below; the span
                # covers exactly that window
                self._obs_end(flow, "rule_scan",
                              end=span.start + result.scan_latency,
                              backend=result.backend)
        # the scan itself takes time (Figure 6) before the server SYN goes out
        self.loop.call_later(
            result.scan_latency, self._connect_server, flow.key(),
            result.backend, policy,
        )

    @staticmethod
    def _parse_header_only(raw: bytes) -> Optional[HttpRequest]:
        """Build a request from the header block alone (the body may still
        be streaming in; selection only needs the header)."""
        idx = raw.find(b"\r\n\r\n")
        if idx < 0:
            return None
        from repro.http.message import Headers, parse_request_line

        lines = raw[:idx].split(b"\r\n")
        try:
            method, path, version = parse_request_line(lines[0])
        except Exception:
            return None
        headers = Headers()
        for line in lines[1:]:
            name, sep, value = line.decode("latin-1").partition(":")
            if sep:
                headers.set(name.strip(), value.strip())
        req = HttpRequest(method=method, path=path, version=version)
        req.headers = headers
        return req

    def _connect_server(self, key: str, backend: str, policy: VipPolicy) -> None:
        flow = self.flows.get(key)
        if flow is None or self.host.failed or flow.phase is not FlowPhase.AWAIT_HEADER:
            return
        state = flow.state
        flow.backend_name = backend
        server_ep = policy.endpoint_of(backend)
        try:
            snat_port = self._alloc_snat_port(policy.vip)
        except SnatExhausted:
            self._refuse_exhausted(flow)
            return
        state.server = server_ep
        state.snat_port = snat_port
        if flow.tls:
            # the backend will replay the identical deterministic
            # handshake flight; remember how many bytes to suppress
            state.tls_handshake_len = len(flow.resp_out)
        if flow.long_lived:
            # the full request header, so a takeover instance can re-run
            # rule selection if this backend is dead by then; rides the
            # storage-b write below
            state.replay_header = bytes(flow.req_assembled)
        flow.phase = FlowPhase.SERVER_SYN_SENT
        state.phase = FlowPhase.SERVER_SYN_SENT.value
        self.by_server[(str(server_ep), snat_port)] = key
        flow.t_server_syn = self.loop.now()
        if OBS.enabled:
            self._obs_start(flow, "server_connect")
        self._send_server_syn(flow)
        flow.syn_timer = Timer(self.loop, lambda: self._server_syn_rto(key))
        flow.syn_timer.start(SERVER_SYN_RTO)

    def _send_server_syn(self, flow: _LocalFlow) -> None:
        state = flow.state
        # Reuse the client's ISN (offset by any earlier requests) so the
        # client's data bytes flow to the server without seq rewriting.
        isn = seq_add(state.client_isn, state.request_offset)
        pkt = Packet(
            src=Endpoint(state.vip.ip, state.snat_port), dst=state.server,
            flags=SYN, seq=isn,
        )
        if OBS.enabled and flow.obs_ctx is not None:
            # the backend's passive open adopts the client's trace context
            pkt.meta["obs_ctx"] = flow.obs_ctx
        self._send(pkt)

    def _server_syn_rto(self, key: str) -> None:
        flow = self.flows.get(key)
        if flow is None or flow.phase is not FlowPhase.SERVER_SYN_SENT:
            return
        flow.syn_tries += 1
        if flow.syn_tries > SERVER_SYN_RETRIES:
            self.metrics.counter("server_connect_failed").inc()
            if self.qos is not None and flow.backend_name is not None:
                self.qos.backend_failure(flow.backend_name)
            self._send(Packet(src=flow.state.vip, dst=flow.state.client,
                              flags=RST | ACK, seq=flow.state.yoda_isn,
                              ack=seq_add(flow.state.client_isn, 1)))
            self._destroy_flow(flow, remove_stored=True)
            return
        self._send_server_syn(flow)
        flow.syn_timer.start(SERVER_SYN_RTO * (2 ** flow.syn_tries))

    def _alloc_snat_port(self, vip: str) -> int:
        if self.l4lb is not None:
            lo, hi = self.l4lb.snat_range(vip, self.ip)
        else:
            lo, hi = DEFAULT_SNAT_RANGE
        in_use = self._snat_in_use.setdefault(vip, set())
        for attempt in range(2):
            port = self._snat_next.get(vip, lo)
            if not lo <= port < hi:
                # the allocator handed this instance a DIFFERENT block than
                # last time (drain released the old one; a re-adoption gets
                # whatever is free).  A stale cursor would mint ports inside
                # another instance's block -- return traffic then routes to
                # that owner and both connects wedge in SERVER_SYN_SENT.
                port = lo
            for _ in range(hi - lo):
                candidate = port
                port = port + 1 if port + 1 < hi else lo
                if candidate not in in_use:
                    in_use.add(candidate)
                    self._snat_next[vip] = port
                    return candidate
            # under pressure, reclaim flows that are already closing
            if attempt == 0:
                closing = [f for f in list(self.flows.values())
                           if f.phase is FlowPhase.CLOSING]
                for flow in closing:
                    self._destroy_flow(flow, remove_stored=True)
                if not closing:
                    break
        self.metrics.counter("snat_exhaustions").inc()
        raise SnatExhausted(vip, self.ip)

    def _refuse_exhausted(self, flow: _LocalFlow) -> None:
        """SNAT exhaustion: refuse the flow with an RST and release the
        mux's 5-tuple pin *immediately*.  Without the release, the refused
        key stayed pinned to this instance for the full mux idle timeout,
        steering the client's remaining packets (and any same-5-tuple
        retry) at an instance that has no ports to serve them with."""
        state = flow.state
        self.metrics.counter("snat_refused_flows").inc()
        if OBS.enabled:
            OBS.flight(self.name, "snat_exhausted_refuse", flow.key())
        self._send(Packet(
            src=state.vip, dst=state.client, flags=RST | ACK,
            seq=state.yoda_isn, ack=seq_add(state.client_isn, 1),
        ))
        self._destroy_flow(flow, remove_stored=True)
        if self.l4lb is not None:
            self.l4lb.release_flow(state.client, state.vip)

    # =========================================================== server side ==
    def _handle_server_packet(self, pkt: Packet, policy: VipPolicy) -> None:
        skey = (str(pkt.src), pkt.dst.port)
        key = self.by_server.get(skey)
        flow = self.flows.get(key) if key is not None else None
        if flow is None:
            self._recover_by_server(skey, pkt, policy)
            return
        flow.last_seen = self.loop.now()
        state = flow.state
        if pkt.rst:
            # backend reset: propagate to the client, translated
            if state.established:
                self._send(self._translate_to_client(flow, pkt))
            else:
                # refused during connect: that is breaker-relevant signal
                if self.qos is not None and flow.backend_name is not None:
                    self.qos.backend_failure(flow.backend_name)
                self._send(Packet(src=state.vip, dst=state.client,
                                  flags=RST | ACK, seq=state.yoda_isn,
                                  ack=seq_add(state.client_isn, 1)))
            self._destroy_flow(flow, remove_stored=True)
            return
        if pkt.syn and pkt.has_ack:
            self._handle_server_syn_ack(flow, pkt)
            return
        if flow.phase in (FlowPhase.TUNNEL, FlowPhase.CLOSING):
            if state.tls_handshake_len and pkt.payload:
                pkt = self._suppress_duplicate_handshake(flow, pkt)
                if pkt is None:
                    return
            if pkt.payload:
                rel = seq_diff(seq_add(pkt.seq, pkt.payload_len),
                               seq_add(state.server_isn, 1))
                if rel > flow.resp_high:
                    flow.resp_high = rel
            if pkt.fin:
                flow.fin_server = True
            self._send(self._translate_to_client(flow, pkt))
            self._maybe_finish(flow)

    def _handle_server_syn_ack(self, flow: _LocalFlow, pkt: Packet) -> None:
        state = flow.state
        if flow.phase is FlowPhase.TUNNEL:
            # our handshake ACK was lost; repeat it
            self._send_server_handshake_ack(flow)
            return
        if flow.phase is not FlowPhase.SERVER_SYN_SENT or flow.storage_b_inflight:
            return
        expected_ack = seq_add(state.client_isn, state.request_offset + 1)
        if pkt.ack != expected_ack:
            return
        state.server_isn = pkt.seq
        flow.storage_b_inflight = True
        t0 = self.loop.now()
        state.phase = FlowPhase.TUNNEL.value
        if self.stateless:
            # no storage-b: complete the backend handshake immediately
            self._storage_b_done(flow.key(), True, t0)
            return
        if OBS.enabled:
            span = self._obs_start(flow, "storage_b")
            if span is not None:
                OBS.ctx = OBS.tracer.ctx_of(span)
        # storage-b MUST complete before the ACK to the server (Figure 3)
        self.tcpstore.store_server_conn(
            state, lambda ok: self._storage_b_done(flow.key(), ok, t0)
        )
        OBS.ctx = None

    def _storage_b_done(self, key: str, ok: bool, t0: float) -> None:
        flow = self.flows.get(key)
        if flow is None or self.host.failed:
            return
        flow.storage_b_inflight = False
        if not ok:
            # leave SERVER_SYN_SENT; the server retransmits its SYN-ACK and
            # we will retry persisting.
            flow.state.phase = FlowPhase.SERVER_SYN_SENT.value
            self.metrics.counter("storage_b_failed").inc()
            if OBS.enabled:
                self._obs_end(flow, "storage_b", ok=False)
                OBS.flight(self.name, "storage_b_failed", key)
            return
        if flow.syn_timer is not None:
            flow.syn_timer.cancel()
        now = self.loop.now()
        if not self.stateless:  # no zero-latency samples from the fast path
            self.metrics.histogram("storage_b_latency").observe(now - t0)
        self.metrics.histogram("server_connect_latency").observe(
            now - flow.t_server_syn
        )
        if OBS.enabled:
            self._obs_end(flow, "storage_b", end=now, ok=True)
            self._obs_end(flow, "server_connect", end=now, ok=True)
        if self.qos is not None and flow.backend_name is not None:
            self.qos.backend_success(flow.backend_name,
                                     now - flow.t_server_syn)
        self._release_qos_slot(flow)  # flow left the connection phase
        flow.phase = FlowPhase.TUNNEL
        flow.t_established = now
        self._send_server_handshake_ack(flow)
        self._forward_buffered_request(flow)

    def _send_server_handshake_ack(self, flow: _LocalFlow) -> None:
        state = flow.state
        self._send(Packet(
            src=Endpoint(state.vip.ip, state.snat_port), dst=state.server,
            flags=ACK, seq=seq_add(state.client_isn, state.request_offset + 1),
            ack=seq_add(state.server_isn, 1),
        ))

    def _forward_buffered_request(self, flow: _LocalFlow) -> None:
        """Replay the buffered HTTP header bytes to the backend, in the
        client's own sequence space."""
        state = flow.state
        data = bytes(flow.req_assembled[flow.forwarded_req_bytes:])
        base = seq_add(state.client_isn, 1 + flow.forwarded_req_bytes)
        for off in range(0, len(data), MSS):
            chunk = data[off:off + MSS]
            self._send(Packet(
                src=Endpoint(state.vip.ip, state.snat_port), dst=state.server,
                flags=ACK, seq=seq_add(base, off),
                ack=seq_add(state.server_isn, 1), payload=chunk,
            ))
        flow.forwarded_req_bytes += len(data)

    def _maybe_switch_backend(self, flow: _LocalFlow, request, start_offset: int,
                              policy: VipPolicy) -> bool:
        """Re-classify an HTTP/1.1 follow-up request; switch backends if it
        matches a different one (Section 5.2).

        The mechanics reuse the connection-phase tricks with offsets:
        the new backend connection's ISN is the client's stream position
        at the request boundary (so request bytes still flow unrewritten),
        and the server->client delta accumulates the response bytes
        already delivered by previous backends.
        """
        state = flow.state
        version, table = self._tables[policy.vip]
        result = table.select(request, self.rng, self._selection_view())
        if result is None:
            return False  # keep the current backend rather than reset
        new_ep = policy.endpoint_of(result.backend)
        if new_ep == state.server:
            return False  # same backend: the connection is simply reused
        self.metrics.counter("backend_switches").inc()
        flow.backend_name = result.backend
        # close the old backend connection and drop its TCPStore index
        old_skey = (str(state.server), state.snat_port)
        self.by_server.pop(old_skey, None)
        if not self.stateless:  # no index record was ever written
            self.tcpstore.remove_server_index(state)
        self._send(Packet(
            src=Endpoint(state.vip.ip, state.snat_port), dst=state.server,
            flags=RST | ACK,
            seq=seq_add(state.client_isn, 1 + len(flow.req_assembled)),
            ack=seq_add(state.server_isn or 0, 1),
        ))
        in_use = self._snat_in_use.get(state.vip.ip)
        if in_use is not None and state.snat_port is not None:
            in_use.discard(state.snat_port)
        # re-base the flow onto the new backend
        state.request_offset = start_offset
        state.response_offset += flow.resp_high
        flow.resp_high = 0
        state.server = new_ep
        state.server_isn = None
        try:
            state.snat_port = self._alloc_snat_port(policy.vip)
        except SnatExhausted:
            # old backend connection is already torn down; refuse the
            # client rather than limp on with no port
            self._refuse_exhausted(flow)
            return True
        state.phase = FlowPhase.SERVER_SYN_SENT.value
        flow.phase = FlowPhase.SERVER_SYN_SENT
        flow.forwarded_req_bytes = start_offset
        flow.syn_tries = 0
        flow.policy_version = version
        self.by_server[(str(new_ep), state.snat_port)] = flow.key()
        flow.t_server_syn = self.loop.now()
        if OBS.enabled:
            OBS.flight(self.name, "backend_switch",
                       f"{flow.key()} -> {result.backend}")
            self._obs_start(flow, "server_connect")
        self._send_server_syn(flow)
        if flow.syn_timer is None:
            key = flow.key()
            flow.syn_timer = Timer(self.loop, lambda: self._server_syn_rto(key))
        flow.syn_timer.start(SERVER_SYN_RTO)
        return True

    # ========================================================== translation ==
    def _suppress_duplicate_handshake(self, flow: _LocalFlow,
                                      pkt: Packet) -> Optional[Packet]:
        """Drop (or trim) backend response bytes that duplicate the TLS
        handshake flight this instance already served to the client,
        ACKing them locally so the backend's window keeps moving."""
        state = flow.state
        sup = state.tls_handshake_len
        rel = seq_diff(pkt.seq, seq_add(state.server_isn, 1))
        end = rel + pkt.payload_len
        if rel >= sup:
            return pkt  # past the handshake: nothing to do
        # ACK the suppressed span toward the backend
        self._send(Packet(
            src=Endpoint(state.vip.ip, state.snat_port), dst=state.server,
            flags=ACK,
            seq=seq_add(state.client_isn, 1 + len(flow.req_assembled)),
            ack=seq_add(state.server_isn, 1 + min(end, sup)),
        ))
        if end <= sup:
            return None  # entirely within the duplicate flight
        keep = sup - rel
        return pkt.copy(seq=seq_add(pkt.seq, keep), payload=pkt.payload[keep:])

    def _delta(self, state: FlowState) -> int:
        """Server->client sequence offset: C - S (plus HTTP/1.1 response
        offset when the backend has been switched mid-connection)."""
        return seq_diff(seq_add(state.yoda_isn, state.response_offset),
                        state.server_isn)

    def _translate_to_client(self, flow: _LocalFlow, pkt: Packet) -> Packet:
        state = flow.state
        return pkt.copy(
            src=state.vip, dst=state.client,
            seq=seq_add(pkt.seq, self._delta(state)),
            # the server ACKs bytes in the client's own sequence space
            # (ISN reuse), so the ack field passes through untouched
        )

    def _translate_to_server(self, flow: _LocalFlow, pkt: Packet) -> Packet:
        state = flow.state
        return pkt.copy(
            src=Endpoint(state.vip.ip, state.snat_port), dst=state.server,
            ack=seq_add(pkt.ack, -self._delta(state)) if pkt.has_ack else 0,
        )

    # ============================================================== recovery ==
    def _recover_by_client(self, key: str, pkt: Packet) -> None:
        if key in self._recovering_c:
            self._recovering_c[key].append(pkt)
            return
        self._recovering_c[key] = [pkt]
        self.metrics.counter("recovery_lookups_client").inc()
        self.tcpstore.get_by_client(
            pkt.src, pkt.dst, lambda st: self._client_recovery_done(key, st)
        )

    def _client_recovery_done(self, key: str, state: Optional[FlowState]) -> None:
        queued = self._recovering_c.pop(key, [])
        if self.host.failed:
            return
        if state is None:
            self.metrics.counter("recovery_miss").inc()
            return
        flow = self._install_recovered(key, state)
        policy = self.policies.get(state.vip.ip)
        if policy is None:
            return
        for pkt in queued:
            self._client_packet_on_flow(flow, pkt, policy)

    def _recover_by_server(self, skey: Tuple[str, int], pkt: Packet,
                           policy: VipPolicy) -> None:
        if skey in self._recovering_s:
            self._recovering_s[skey].append(pkt)
            return
        self._recovering_s[skey] = [pkt]
        self.metrics.counter("recovery_lookups_server").inc()
        server_ep = Endpoint.parse(skey[0])
        self.tcpstore.get_by_server(
            pkt.dst.ip, skey[1], server_ep,
            lambda st: self._server_recovery_done(skey, st),
        )

    def _server_recovery_done(self, skey: Tuple[str, int],
                              state: Optional[FlowState]) -> None:
        queued = self._recovering_s.pop(skey, [])
        if self.host.failed:
            return
        if state is None:
            self.metrics.counter("recovery_miss").inc()
            # orphan half-open server connection: clean it up so the
            # backend does not retransmit forever
            for pkt in queued:
                if not pkt.rst:
                    self._send(Packet(
                        src=pkt.dst, dst=pkt.src, flags=RST | ACK,
                        seq=pkt.ack if pkt.has_ack else 0,
                        ack=seq_add(pkt.seq, max(pkt.seq_span, 1)),
                    ))
            return
        key = flow_key(state.client, state.vip)
        flow = self._install_recovered(key, state)
        policy = self.policies.get(state.vip.ip)
        if policy is None:
            return
        for pkt in queued:
            self._handle_server_packet(pkt, policy)

    def _install_recovered(self, key: str, state: FlowState) -> _LocalFlow:
        existing = self.flows.get(key)
        if existing is not None:
            return existing
        flow = _LocalFlow(state, self.loop.now())
        flow.syn_stored = True
        flow.recovered = True
        flow.requests_seen = None  # HTTP/1.1 switching needs parser context
        if OBS.enabled:
            self._obs_flow_open(flow, None, recovered=True)
            OBS.flight(self.name, "flow_recovered",
                       f"{key} phase={state.phase}")
        policy = self.policies.get(state.vip.ip)
        if policy is not None and policy.certificate is not None:
            flow.enable_tls()
            flow.resp_out = tls.certificate_flight(policy.certificate)
            if state.client_prefix and not state.established:
                # mid-handshake takeover: replay the stored hello through
                # our own codec, then resend the entire certificate -- the
                # client's TCP discards the duplicate segments (paper 5.2)
                flow.req_assembled = bytearray(state.client_prefix)
                flow.tls_records.extend(
                    flow.tls_codec.feed(state.client_prefix))
                for rtype, payload in flow.tls_records:
                    if rtype == tls.CLIENT_HELLO:
                        flow.tls_hello_done = True
                        sni, ticket = tls.parse_hello(payload)
                        flow.tls_sni = sni
                        if ticket is not None and policy.session_tickets:
                            # the dead instance only persists a ticketed
                            # hello after validating it, so resume the
                            # abbreviated flight rather than the full one
                            flow.tls_resumed = True
                            flow.resp_out = tls.session_ticket(ticket)
                flow.tls_records = [
                    r for r in flow.tls_records if r[0] != tls.CLIENT_HELLO
                ]
                if flow.tls_hello_done:
                    self.loop.call_soon(self._resend_cert_if_alive, key)
        if state.established:
            flow.long_lived = bool(state.replay_header) and not flow.tls
            if (flow.long_lived and policy is not None
                    and self._backend_dead(policy, state.server)
                    and self._resume_dead_backend(key, flow, policy)):
                pass  # reconnecting to a replacement backend
            else:
                flow.phase = FlowPhase.TUNNEL
                self.by_server[(str(state.server), state.snat_port)] = key
                # a recovered tunnel flow replays no header; the endpoints'
                # own retransmissions drive it
                flow.forwarded_req_bytes = 0
        else:
            flow.phase = FlowPhase.AWAIT_HEADER
        self.flows[key] = flow
        self.metrics.counter("flows_recovered").inc()
        return flow

    def _backend_dead(self, policy: VipPolicy, server_ep: Endpoint) -> bool:
        """Whether the controller's health view says this endpoint's
        backend is down (the region-kill case for recovered streams)."""
        for name, ep in policy.backends.items():
            if ep == server_ep:
                return not self.backend_view.is_healthy(name)
        return False

    def _resume_dead_backend(self, key: str, flow: _LocalFlow,
                             policy: VipPolicy) -> bool:
        """Re-anchor a recovered long-lived flow onto a live backend.

        The stored backend is dead, so tunneling would stall forever.
        Instead: re-run rule selection on the persisted request header,
        open a fresh backend connection (new SNAT port), replay the
        request, and let the replacement backend re-serve the
        deterministic response from byte zero -- suppressing, with local
        ACKs, everything up to the checkpointed client watermark, exactly
        the way the duplicate TLS handshake flight is suppressed."""
        state = flow.state
        request = self._parse_header_only(bytes(state.replay_header))
        if request is None:
            return False
        version, table = self._tables[policy.vip]
        result = table.select(request, self.rng, self._selection_view())
        if result is None:
            return False
        new_ep = policy.endpoint_of(result.backend)
        if new_ep == state.server:
            return False  # selection still points at the dead backend
        # allocate before touching flow state: exhaustion here must leave
        # the recovered flow exactly as the lookup produced it
        try:
            snat_port = self._alloc_snat_port(policy.vip)
        except SnatExhausted:
            return False
        self.metrics.counter("stream_resumes").inc()
        if OBS.enabled:
            OBS.flight(self.name, "stream_resume",
                       f"{key} -> {result.backend}")
        flow.resumed_stream = True
        flow.request = request
        flow.req_assembled = bytearray(state.replay_header)
        # suppress response bytes the client is known to hold; client ACKs
        # raise this further as they arrive (see _client_packet_on_flow)
        sup = state.resp_delivered - state.response_offset
        if sup > state.tls_handshake_len:
            state.tls_handshake_len = sup
        state.server = new_ep
        state.server_isn = None
        state.snat_port = snat_port
        state.phase = FlowPhase.SERVER_SYN_SENT.value
        flow.phase = FlowPhase.SERVER_SYN_SENT
        flow.forwarded_req_bytes = state.request_offset
        flow.policy_version = version
        self.by_server[(str(new_ep), state.snat_port)] = key
        flow.t_server_syn = self.loop.now()
        if OBS.enabled:
            self._obs_start(flow, "server_connect")
        self._send_server_syn(flow)
        flow.syn_timer = Timer(self.loop, lambda: self._server_syn_rto(key))
        flow.syn_timer.start(SERVER_SYN_RTO)
        return True

    # ================================================================ cleanup ==
    def _maybe_finish(self, flow: _LocalFlow) -> None:
        if flow.fin_client and flow.fin_server:
            flow.phase = FlowPhase.CLOSING
            if not flow.cleanup_scheduled:
                flow.cleanup_scheduled = True
                self.loop.call_later(FLOW_LINGER, self._finish_flow, flow.key())

    def _finish_flow(self, key: str) -> None:
        flow = self.flows.get(key)
        if flow is None:
            return
        self.completed_flows += 1
        self.metrics.counter("flows_completed").inc()
        if OBS.enabled:
            self._obs_end(flow, "flow", completed=True)
        self._destroy_flow(flow, remove_stored=True)

    def _destroy_flow(self, flow: _LocalFlow, remove_stored: bool) -> None:
        state = flow.state
        if OBS.enabled and flow.obs_spans is not None:
            for name in ("storage_a", "storage_b", "server_connect", "rule_scan"):
                self._obs_end(flow, name, ok=False)
            self._obs_end(flow, "flow", completed=False)
        self.flows.pop(flow.key(), None)
        self._release_qos_slot(flow)
        if flow.syn_timer is not None:
            flow.syn_timer.cancel()
        if flow.cert_timer is not None:
            flow.cert_timer.cancel()
        if state.server is not None and state.snat_port is not None:
            self.by_server.pop((str(state.server), state.snat_port), None)
            in_use = self._snat_in_use.get(state.vip.ip)
            if in_use is not None:
                in_use.discard(state.snat_port)
        if remove_stored and not self.host.failed and not self.stateless:
            self.tcpstore.remove(state)

    def _collect_idle_flows(self) -> None:
        now = self.loop.now()
        stale = [f for f in self.flows.values()
                 if now - f.last_seen > FLOW_IDLE_TIMEOUT]
        for flow in stale:
            self.metrics.counter("flows_idle_reaped").inc()
            self._destroy_flow(flow, remove_stored=True)

    def snat_ports_leaked(self) -> Dict[str, set]:
        """SNAT ports marked in-use but owned by no live flow, per VIP.

        An invariant monitor calls this after a run settles: every
        allocated port must be released by :meth:`_destroy_flow`, or the
        finite SNAT range eventually starves new server connections.
        """
        owned: Dict[str, set] = {}
        for flow in self.flows.values():
            state = flow.state
            if state.snat_port is not None:
                owned.setdefault(state.vip.ip, set()).add(state.snat_port)
        leaked: Dict[str, set] = {}
        for vip, in_use in self._snat_in_use.items():
            extra = in_use - owned.get(vip, set())
            if extra:
                leaked[vip] = extra
        return leaked
