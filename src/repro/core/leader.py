"""Controller high availability: fenced leases, journaled takeover.

The controller was the last singleton in the system: instances, stores,
and whole regions could crash and heal, but one dead ``YodaController``
silently stopped probing, remapping, draining and failing over.  This
module makes the control plane a replicated, leader-elected service:

- :class:`LeaderElector` — each controller replica competes for a lease
  record in the flow-state store (key ``yoda:ctl:lease``), stamped with
  the PR 2 ``(counter, writer_id)`` versions so concurrent claims resolve
  newest-wins deterministically.  The holder renews at ``ttl/3`` and
  steps down when its renewal is superseded or the lease expires.
- :class:`FenceGate` — receivers (the L4 LB, every instance) remember the
  highest ``(epoch, holder)`` they have accepted and reject control
  pushes from anything older with :class:`StaleLeaderEpoch`.  Fencing,
  not the lease, is the safety mechanism: a partitioned old leader can
  believe it still leads, but nothing it says is accepted.
- :class:`ControlJournal` — the leader writes its control-plane state
  (assignments, drain progress, failover bookkeeping, counters) into the
  store after every mutation; a newly elected leader replays the journal
  and *resumes* a mid-flight drain or region failover instead of
  restarting it.
- :class:`ControllerReplica` / :class:`ControllerReplicaSet` — the
  testbed-facing wrapper: N replicas, each a killable/partitionable host
  carrying a cold ``YodaController``; the set tracks leadership events so
  chaos invariants can reconstruct every leaderless window.

While no leader holds the lease the data plane is statically stable:
muxes keep their last pushed mappings, instances keep serving and
checkpointing established flows, and the store keeps replicating.  Only
*reactions* (remaps, drains, failover, scaling) wait for the next leader.
"""

from __future__ import annotations

import json
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.tcpstore import VersionLedger
from repro.errors import LeadershipLost, LeaseStoreUnavailable, StaleLeaderEpoch
from repro.kvstore.client import KvOpResult, MemcachedCluster, ReplicatingKvClient
from repro.net.host import Host
from repro.obs import OBS
from repro.sim.events import EventLoop
from repro.sim.metrics import MetricRegistry
from repro.sim.process import PeriodicTask

LEASE_KEY = "yoda:ctl:lease"
JOURNAL_KEY = "yoda:ctl:journal"

LEASE_TTL = 1.5           # seconds a claim is valid without renewal
LEASE_SETTLE = 0.25       # claim -> confirm-read delay (lets a duel land)
FENCE_LOG_CAP = 4096      # per-gate decision log bound


class LeaderToken:
    """The credential every control decision carries: which epoch the
    sender holds the lease at, and who the sender is.  Immutable."""

    __slots__ = ("epoch", "holder")

    def __init__(self, epoch: int, holder: str):
        self.epoch = epoch
        self.holder = holder

    def __repr__(self) -> str:
        return f"LeaderToken(e{self.epoch}, {self.holder!r})"

    def __eq__(self, other) -> bool:
        return (isinstance(other, LeaderToken)
                and other.epoch == self.epoch and other.holder == self.holder)

    def __hash__(self) -> int:
        return hash((self.epoch, self.holder))


class FenceGate:
    """Receiver-side stale-leader rejection.

    Remembers the highest ``(epoch, holder)`` ever accepted.  ``admit``
    with ``None`` is a silent accept — the single-controller (HA
    disabled) configuration never constructs tokens, so the legacy
    control path is bit-identical.  A token at a *newer* epoch is adopted;
    the same epoch is only honored from the holder it was first accepted
    from (first-wins binding breaks same-epoch duels); anything older
    raises :class:`StaleLeaderEpoch`.

    Every fenced decision is appended to ``log`` so the
    AtMostOneActingLeader invariant can sweep the full accept history.
    """

    __slots__ = ("name", "epoch", "holder", "log", "rejected")

    def __init__(self, name: str):
        self.name = name
        self.epoch = -1
        self.holder: Optional[str] = None
        # (time, epoch, holder, kind, accepted)
        self.log: List[Tuple[float, int, str, str, bool]] = []
        self.rejected = 0

    def admit(self, token: Optional[LeaderToken], kind: str, now: float = 0.0) -> None:
        if token is None:
            return
        if token.epoch > self.epoch or (
                token.epoch == self.epoch and token.holder == self.holder):
            self.epoch = token.epoch
            self.holder = token.holder
            self._record(now, token, kind, True)
            return
        self.rejected += 1
        self._record(now, token, kind, False)
        if OBS.enabled:
            OBS.flight(f"{self.name}.fence", "reject",
                       f"{kind} from {token.holder}@e{token.epoch} "
                       f"(fenced at {self.holder}@e{self.epoch})")
        raise StaleLeaderEpoch(self.name, kind, token.epoch, token.holder,
                               self.epoch, self.holder or "?")

    def _record(self, now: float, token: LeaderToken, kind: str, ok: bool) -> None:
        if len(self.log) < FENCE_LOG_CAP:
            self.log.append((now, token.epoch, token.holder, kind, ok))


class ControlJournal:
    """The leader's durable control-plane state, one versioned record.

    A single store key holding a canonical-JSON snapshot, stamped through
    a :class:`VersionLedger` exactly like flow records: replicas keep the
    newest version, refused writes report what superseded them.  A
    refused journal write is *not* retried over — it means a newer leader
    owns the journal, which the writer surfaces to its elector as a
    fencing signal.
    """

    def __init__(self, kv: ReplicatingKvClient, writer_id: str):
        self.kv = kv
        self.writer_id = writer_id
        self.ledger = VersionLedger(writer_id)
        self.writes = 0
        self.superseded = 0

    def write(self, state: Dict,
              on_done: Optional[Callable[[bool, bool], None]] = None) -> None:
        """Persist ``state``; ``on_done(ok, superseded)`` reports whether
        any replica acked and whether a newer writer's record refused us."""
        payload = json.dumps(state, sort_keys=True).encode()
        version = self.ledger.stamp(JOURNAL_KEY)
        self.writes += 1

        def _cb(result: KvOpResult) -> None:
            superseded = result.superseded_by is not None
            if superseded:
                self.ledger.adopt(JOURNAL_KEY, result.superseded_by)
                self.superseded += 1
            if on_done is not None:
                on_done(result.ok and not superseded, superseded)

        self.kv.set(JOURNAL_KEY, payload, _cb, version=version)

    def read(self, on_done: Callable[[Optional[Dict]], None]) -> None:
        """Fetch the newest journal snapshot (None if absent/unreadable)."""

        def _cb(result: KvOpResult) -> None:
            if not result.ok or result.value is None:
                on_done(None)
                return
            self.ledger.adopt(JOURNAL_KEY, result.version)
            try:
                on_done(json.loads(result.value.decode()))
            except (ValueError, UnicodeDecodeError):
                on_done(None)

        self.kv.get(JOURNAL_KEY, _cb)


class LeaderElector:
    """One replica's lease state machine: follower → claiming → leader.

    Followers poll the lease at ``ttl/3``.  An absent or expired lease
    triggers a claim: a versioned write of ``epoch = highest observed +
    1``, then a settle delay, then a confirm read — the claimant only
    becomes leader if the read shows *its own* record, so when two
    replicas stamp the same counter the ``writer_id`` tie-break picks the
    same winner on every replica and the loser stands down without ever
    acting.  While a live leader renews (bumping the record's version
    counter every ``ttl/3``), a competitor's claim is refused as
    superseded — claims only land once renewals stop.

    A leader whose renewal is refused steps down immediately with
    :class:`LeadershipLost`; one whose renewals go unanswered
    (:class:`LeaseStoreUnavailable`) keeps acting until its lease expiry
    plus ``grace`` — modeling the partitioned old leader the fence gates
    exist for.
    """

    def __init__(self, host: Host, loop: EventLoop, kv: ReplicatingKvClient,
                 cluster: MemcachedCluster, ttl: float = LEASE_TTL,
                 settle: float = LEASE_SETTLE, grace: float = 0.0,
                 start_delay: float = 0.0,
                 metrics: Optional[MetricRegistry] = None):
        self.host = host
        self.loop = loop
        self.kv = kv
        self.cluster = cluster
        self.ttl = ttl
        self.settle = settle
        self.grace = grace
        self.start_delay = start_delay
        self.metrics = metrics or MetricRegistry(f"{host.name}.elector")
        self.ledger = VersionLedger(host.name)
        self.state = "idle"  # idle | follower | claiming | leader
        self.epoch = -1              # epoch currently held (leader only)
        self.observed_epoch = 0      # highest epoch ever seen
        self.lease_expires = 0.0     # local view of our lease's expiry
        self.on_elected: Optional[Callable[[LeaderToken], None]] = None
        self.on_lost: Optional[Callable[[Exception], None]] = None
        self._poll = PeriodicTask(loop, max(ttl / 3.0, 0.05), self._tick)
        self._gen = 0  # bumped on fail/step-down; stale callbacks no-op

    # -- lifecycle -----------------------------------------------------------
    def start(self) -> None:
        self.state = "follower"
        self.loop.call_later(self.start_delay, self._first_poll)

    def _first_poll(self) -> None:
        if self.state == "idle":
            return
        self._poll.start(fire_now=True)

    def fail(self) -> None:
        """The replica's host died: stop competing, forget leadership."""
        self._gen += 1
        self.state = "idle"
        self.epoch = -1
        self._poll.stop()

    def recover(self) -> None:
        self._gen += 1
        self.state = "follower"
        self._poll.start(fire_now=True)

    # -- poll loop -----------------------------------------------------------
    def _tick(self) -> None:
        if self.host.failed or self.state == "idle":
            return
        self._readmit_lease_servers()
        if self.state == "leader":
            self._renew()
        elif self.state == "follower":
            self._probe()
        # "claiming" is driven by its own callbacks; the poll waits it out

    def _readmit_lease_servers(self) -> None:
        """Nobody else re-admits lease servers while the system is
        leaderless (the controller's store monitor is part of the thing
        that died), so electors sweep their own membership view: any
        server whose host is actually up is offered back to the ring —
        ``mark_live`` still refuses while the data-path quarantine
        holds."""
        now = self.loop.now()
        for name, server in self.cluster.servers.items():
            if name not in self.cluster.ring and not server.host.failed:
                self.cluster.mark_live(name, now=now)

    # -- follower: watch the lease, claim when it lapses -----------------------
    def _probe(self) -> None:
        gen = self._gen

        def _cb(result: KvOpResult) -> None:
            if gen != self._gen or self.state != "follower" or self.host.failed:
                return
            if result.replicas_answered == 0:
                self._note_unavailable("read")
                return
            rec = self._decode(result)
            if rec is not None:
                self.ledger.adopt(LEASE_KEY, result.version)
                self.observed_epoch = max(self.observed_epoch, rec["epoch"])
                if rec["expires_at"] > self.loop.now():
                    return  # live leader elsewhere
            self._claim()

        self.kv.get(LEASE_KEY, _cb)

    def _claim(self) -> None:
        self.state = "claiming"
        gen = self._gen
        epoch = self.observed_epoch + 1
        expires = self.loop.now() + self.ttl
        self.metrics.counter("claims").inc()

        def _cb(result: KvOpResult) -> None:
            if gen != self._gen or self.state != "claiming":
                return
            if result.superseded_by is not None:
                # a live leader's renewal (or a faster claim) out-versions
                # us: adopt and stand down without confirming
                self.ledger.adopt(LEASE_KEY, result.superseded_by)
                self.state = "follower"
                return
            if not result.ok:
                self.state = "follower"
                self._note_unavailable("claim")
                return
            self.loop.call_later(self.settle, self._confirm, gen, epoch)

        self.kv.set(LEASE_KEY, self._encode(epoch, expires), _cb,
                    version=self.ledger.stamp(LEASE_KEY))

    def _confirm(self, gen: int, epoch: int) -> None:
        if gen != self._gen or self.state != "claiming":
            return

        def _cb(result: KvOpResult) -> None:
            if gen != self._gen or self.state != "claiming":
                return
            rec = self._decode(result)
            if rec is not None:
                self.ledger.adopt(LEASE_KEY, result.version)
                self.observed_epoch = max(self.observed_epoch, rec["epoch"])
            if (rec is not None and rec["holder"] == self.host.name
                    and rec["epoch"] == epoch):
                self.state = "leader"
                self.epoch = epoch
                self.lease_expires = rec["expires_at"]
                self.metrics.counter("elections_won").inc()
                self.metrics.gauge("leader_epoch").set(epoch)
                if OBS.enabled:
                    OBS.flight(f"{self.host.name}.lease", "elected",
                               f"epoch {epoch}")
                if self.on_elected is not None:
                    self.on_elected(LeaderToken(epoch, self.host.name))
            else:
                self.state = "follower"  # lost the duel

        self.kv.get(LEASE_KEY, _cb)

    # -- leader: renew, or step down -------------------------------------------
    def _renew(self) -> None:
        now = self.loop.now()
        if now > self.lease_expires + self.grace:
            self._step_down(LeadershipLost(
                self.host.name, self.epoch,
                "lease expired without a successful renewal"))
            return
        gen = self._gen
        expires = now + self.ttl

        def _cb(result: KvOpResult) -> None:
            if gen != self._gen or self.state != "leader":
                return
            if result.superseded_by is not None:
                self.ledger.adopt(LEASE_KEY, result.superseded_by)
                self._step_down(LeadershipLost(
                    self.host.name, self.epoch,
                    "renewal superseded by a newer claim"))
                return
            if result.ok:
                self.lease_expires = expires
            else:
                # silence: keep acting until expiry (+ grace); the fence
                # epoch makes this window safe
                self._note_unavailable("renew")

        self.kv.set(LEASE_KEY, self._encode(self.epoch, expires), _cb,
                    version=self.ledger.stamp(LEASE_KEY))

    def step_down(self, exc: Exception) -> None:
        """External demand to stand down (e.g. a fenced push proved a
        newer leader exists)."""
        if self.state == "leader":
            self._step_down(exc)

    def _step_down(self, exc: Exception) -> None:
        self._gen += 1
        self.state = "follower"
        self.epoch = -1
        self.metrics.counter("stepdowns").inc()
        if OBS.enabled:
            OBS.flight(f"{self.host.name}.lease", "step_down", str(exc))
        if self.on_lost is not None:
            self.on_lost(exc)

    # -- shared helpers --------------------------------------------------------
    def _note_unavailable(self, op: str) -> None:
        self.metrics.counter("lease_store_unavailable").inc()
        exc = LeaseStoreUnavailable(self.host.name, op)
        if OBS.enabled:
            OBS.flight(f"{self.host.name}.lease", "store_unavailable", str(exc))

    def _encode(self, epoch: int, expires_at: float) -> bytes:
        return json.dumps({"epoch": epoch, "holder": self.host.name,
                           "expires_at": expires_at}, sort_keys=True).encode()

    @staticmethod
    def _decode(result: KvOpResult) -> Optional[Dict]:
        if not result.ok or result.value is None:
            return None
        try:
            rec = json.loads(result.value.decode())
        except (ValueError, UnicodeDecodeError):
            return None
        if not isinstance(rec, dict) or "epoch" not in rec:
            return None
        return rec


class OperatorRegistry:
    """What the *operator* asked for, kept outside any single controller:
    the services to run, spare instances, the standby region.  Every
    replica's controller can be (re)hydrated from this plus the journal —
    the registry is intent, the journal is progress."""

    def __init__(self):
        # vip -> (policy, backends, instance_names)
        self.services: Dict[str, Tuple] = {}
        self.spare_pool: Dict[str, object] = {}  # name -> YodaInstance
        self.standby_region = None

    def add_service(self, policy, backends, instance_names) -> None:
        self.services[policy.vip] = (policy, backends, instance_names)

    def add_spare(self, instance) -> None:
        self.spare_pool[instance.name] = instance


class ControllerReplica:
    """One killable controller host: an elector plus a cold
    ``YodaController`` that only acts while this replica holds the lease.

    ``fail``/``recover`` model a controller-process crash: the host drops
    packets, every periodic task stops, and (if it led) the lease lapses
    for the next replica to claim.
    """

    def __init__(self, host: Host, loop: EventLoop, kv: ReplicatingKvClient,
                 controller, replica_set: "ControllerReplicaSet"):
        self.host = host
        self.loop = loop
        self.kv = kv
        self.controller = controller
        self.replica_set = replica_set
        self.journal = ControlJournal(kv, host.name)
        self.elector: Optional[LeaderElector] = None
        self._replaying = False
        controller.journal = self.journal
        controller.acting_fn = self.acting
        controller.on_fenced = self._on_fenced

    @property
    def name(self) -> str:
        return self.host.name

    def attach_elector(self, elector: LeaderElector) -> None:
        self.elector = elector
        elector.on_elected = self._on_elected
        elector.on_lost = self._on_lost

    def acting(self) -> bool:
        """May this replica's controller mutate the data plane right now?"""
        return (not self.host.failed
                and self.elector is not None
                and self.elector.state == "leader"
                and not self._replaying)

    # -- leadership transitions ------------------------------------------------
    def _on_elected(self, token: LeaderToken) -> None:
        self.replica_set.record("elected", self.name, token.epoch)
        self._replaying = True

        def _with_journal(state: Optional[Dict]) -> None:
            if self.host.failed or self.elector is None \
                    or self.elector.state != "leader":
                self._replaying = False
                return
            self.controller.take_over(token, state, self.replica_set.registry)
            self._replaying = False
            self.replica_set.record("active", self.name, token.epoch)
            if OBS.enabled:
                OBS.flight(f"{self.name}.ctl", "take_over",
                           f"epoch {token.epoch} "
                           f"journal={'replayed' if state else 'empty'}")

        self.journal.read(_with_journal)

    def _on_lost(self, exc: Exception) -> None:
        epoch = getattr(exc, "epoch", -1)
        self.controller.token = None
        self.replica_set.record("lost", self.name, epoch)

    def _on_fenced(self, exc: StaleLeaderEpoch) -> None:
        """A receiver proved a newer leader exists before our own lease
        machinery noticed: stand down now."""
        if self.elector is not None:
            self.elector.step_down(LeadershipLost(
                self.name, exc.got_epoch,
                f"fenced by {exc.receiver}: {exc}"))

    # -- chaos hooks -----------------------------------------------------------
    def fail(self) -> None:
        was_acting = self.acting()
        epoch = self.elector.epoch if self.elector is not None else -1
        self.host.fail()
        if self.elector is not None:
            self.elector.fail()
        self.controller.halt()
        self.controller.token = None
        self.replica_set.record("killed", self.name, epoch if was_acting else -1)

    def recover(self) -> None:
        self.host.recover()
        self.controller.resume_monitoring()
        if self.elector is not None:
            self.elector.recover()
        self.replica_set.record("recovered", self.name, -1)


class ControllerReplicaSet:
    """The replicated control plane, as the testbed sees it.

    Routes operator intent (``add_vip``, spares, the standby region) to
    every replica's registry and to the acting leader if there is one;
    tracks leadership events so invariants can reconstruct exactly when
    the system was leaderless."""

    def __init__(self, loop: EventLoop, lease_cluster: MemcachedCluster):
        self.loop = loop
        self.lease_cluster = lease_cluster
        self.replicas: List[ControllerReplica] = []
        self.registry = OperatorRegistry()
        # (time, event, replica, epoch); events: elected/active/lost/killed/recovered
        self.events: List[Tuple[float, str, str, int]] = []
        self.metrics = MetricRegistry("ctl.replicaset")
        self._last_active: Optional[ControllerReplica] = None

    def add_replica(self, replica: ControllerReplica) -> None:
        self.replicas.append(replica)

    def record(self, event: str, name: str, epoch: int) -> None:
        self.events.append((self.loop.now(), event, name, epoch))
        self.metrics.counter(f"events_{event}").inc()
        if event == "active":
            self._last_active = self.replica(name)
            self.metrics.gauge("leader_epoch").set(epoch)

    def replica(self, name: str) -> Optional[ControllerReplica]:
        for rep in self.replicas:
            if rep.name == name:
                return rep
        return None

    def acting_replica(self) -> Optional[ControllerReplica]:
        for rep in self.replicas:
            if rep.acting():
                return rep
        return None

    @property
    def leader_controller(self):
        """The controller to address operator commands to: the acting
        leader, else the last leader (its controller still holds the
        richest local state for inspection), else replica 0."""
        rep = self.acting_replica() or self._last_active or self.replicas[0]
        return rep.controller

    # -- operator intent -------------------------------------------------------
    def add_vip(self, policy, backends, instance_names) -> None:
        self.registry.add_service(policy, backends, instance_names)
        rep = self.acting_replica()
        if rep is not None:
            rep.controller.add_vip(policy, backends=backends,
                                   instance_names=instance_names)
            rep.controller.journal_sync()

    def add_spare(self, instance) -> None:
        self.registry.add_spare(instance)
        rep = self.acting_replica()
        if rep is not None:
            rep.controller.add_spare(instance)

    def register_standby_region(self, region) -> None:
        self.registry.standby_region = region
        for rep in self.replicas:
            rep.controller.register_standby_region(region)

    # -- invariant support -----------------------------------------------------
    def leaderless_windows(self, end: float) -> List[Tuple[float, float]]:
        """Intervals during which no replica was actively leading,
        reconstructed from the event log.  The window opens when the
        acting leader dies or steps down and closes when the next
        leader finishes its journal replay (``active``)."""
        windows: List[Tuple[float, float]] = []
        open_at: Optional[float] = 0.0  # leaderless until the first leader
        current: Optional[str] = None
        for t, event, name, _epoch in self.events:
            if event == "active":
                if open_at is not None:
                    windows.append((open_at, t))
                    open_at = None
                current = name
            elif event in ("killed", "lost") and name == current:
                if open_at is None:
                    open_at = t
                current = None
        if open_at is not None:
            windows.append((open_at, end))
        return windows

    def gates(self) -> List[FenceGate]:
        """Every fence gate in the deployment this replica set pushes to
        (for the AtMostOneActingLeader sweep)."""
        out: List[FenceGate] = []
        seen = set()
        for rep in self.replicas:
            ctl = rep.controller
            for obj in [ctl.l4lb, *ctl.instances.values()]:
                gate = getattr(obj, "fence", None)
                if gate is not None and id(gate) not in seen:
                    seen.add(id(gate))
                    out.append(gate)
            if ctl._standby is not None:
                for obj in [ctl._standby.l4lb, *ctl._standby.instances]:
                    gate = getattr(obj, "fence", None)
                    if gate is not None and id(gate) not in seen:
                        seen.add(id(gate))
                        out.append(gate)
        return out
