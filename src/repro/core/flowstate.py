"""The decoupled flow state (paper Sections 3-4).

An end-to-end client flow through YODA is two TCP connections (client-VIP
and VIP-server) plus the selected server.  Everything another instance
needs to take the flow over is captured here and serialized into TCPStore:

- the client's initial sequence number (from storage-a, before SYN-ACK);
- the chosen backend, the SNAT port, and the server's initial sequence
  number (from storage-b, before the ACK to the server);
- for HTTP/1.1, the rolling stream offsets that keep sequence translation
  correct across backend switches.

The client-facing ISN is *not* stored: it is recomputed by hashing the
client's IP and port (Section 4.1), which is what lets every instance send
identical SYN-ACKs.
"""

from __future__ import annotations

import base64
import enum
import json
from dataclasses import dataclass, field
from typing import Optional

from repro.errors import ReproError
from repro.net.addresses import Endpoint
from repro.sim.random import stable_hash32


class FlowPhase(enum.Enum):
    """Where the flow is in its life (paper Section 4.1)."""

    AWAIT_HEADER = "await_header"  # connection phase: collecting the HTTP header
    SERVER_SYN_SENT = "server_syn_sent"  # connecting to the selected backend
    TUNNEL = "tunnel"  # tunneling phase: pure L3 forwarding
    CLOSING = "closing"  # FINs observed; awaiting final ACKs


def yoda_isn(client: Endpoint, vip: Endpoint) -> int:
    """The deterministic client-facing ISN.

    Hash of the client source IP-port tuple (plus the VIP so distinct
    services differ).  All instances compute the same value, so a SYN
    retransmitted after an instance failure gets the *same* SYN-ACK from
    whichever instance receives it -- no storage round-trip needed.
    """
    return stable_hash32(f"{client}|{vip}", salt="yoda-isn")


def client_key(client: Endpoint, vip: Endpoint) -> str:
    """TCPStore key for lookups by client-side 4-tuple."""
    return f"yoda:c:{client}:{vip}"


def server_key(vip_ip: str, snat_port: int, server: Endpoint) -> str:
    """TCPStore key for lookups by server-side 4-tuple (return traffic
    arrives at VIP:snat_port from the backend)."""
    return f"yoda:s:{vip_ip}:{snat_port}:{server}"


@dataclass(slots=True)
class FlowState:
    """The persisted per-flow record."""

    client: Endpoint
    vip: Endpoint
    client_isn: int
    phase: str = FlowPhase.AWAIT_HEADER.value
    # populated at storage-b time:
    server: Optional[Endpoint] = None
    server_isn: Optional[int] = None
    snat_port: Optional[int] = None
    # stream offsets for HTTP/1.1 backend switching: how many request bytes
    # preceded the current backend connection, and how many response bytes
    # the client had received before it (both zero for HTTP/1.0).
    request_offset: int = 0
    response_offset: int = 0
    created_at: float = 0.0
    # SSL termination (Section 5.2): client bytes the instance has already
    # ACKed during the handshake (so a recovering instance can replay its
    # TLS state machine), and the length of the deterministic handshake
    # flight (so the backend's duplicate of it can be suppressed).
    client_prefix: bytes = b""
    tls_handshake_len: int = 0
    # long-lived (streaming) flows only: the checkpointed high-water mark of
    # response bytes delivered to the client (whole-stream coordinates), and
    # the full request header for re-selecting a backend when the recorded
    # one is dead.  Both serialize only when set, so every pre-existing flow
    # record stays byte-identical.
    resp_delivered: int = 0
    replay_header: bytes = b""

    @property
    def yoda_isn(self) -> int:
        return yoda_isn(self.client, self.vip)

    @property
    def established(self) -> bool:
        return self.server is not None and self.server_isn is not None

    def storage_key(self) -> str:
        return client_key(self.client, self.vip)

    def server_storage_key(self) -> Optional[str]:
        if self.server is None or self.snat_port is None:
            return None
        return server_key(self.vip.ip, self.snat_port, self.server)

    # -- serialization ------------------------------------------------------
    def to_bytes(self) -> bytes:
        doc = {
            "client": str(self.client),
            "vip": str(self.vip),
            "client_isn": self.client_isn,
            "phase": self.phase,
            "server": str(self.server) if self.server else None,
            "server_isn": self.server_isn,
            "snat_port": self.snat_port,
            "request_offset": self.request_offset,
            "response_offset": self.response_offset,
            "created_at": self.created_at,
            "client_prefix": (
                base64.b64encode(self.client_prefix).decode()
                if self.client_prefix else ""
            ),
            "tls_handshake_len": self.tls_handshake_len,
        }
        if self.resp_delivered:
            doc["resp_delivered"] = self.resp_delivered
        if self.replay_header:
            doc["replay_header"] = base64.b64encode(self.replay_header).decode()
        return json.dumps(doc, separators=(",", ":")).encode()

    @classmethod
    def from_bytes(cls, raw: bytes) -> "FlowState":
        try:
            doc = json.loads(raw.decode())
            return cls(
                client=Endpoint.parse(doc["client"]),
                vip=Endpoint.parse(doc["vip"]),
                client_isn=doc["client_isn"],
                phase=doc["phase"],
                server=Endpoint.parse(doc["server"]) if doc.get("server") else None,
                server_isn=doc.get("server_isn"),
                snat_port=doc.get("snat_port"),
                request_offset=doc.get("request_offset", 0),
                response_offset=doc.get("response_offset", 0),
                created_at=doc.get("created_at", 0.0),
                client_prefix=(
                    base64.b64decode(doc["client_prefix"])
                    if doc.get("client_prefix") else b""
                ),
                tls_handshake_len=doc.get("tls_handshake_len", 0),
                resp_delivered=doc.get("resp_delivered", 0),
                replay_header=(
                    base64.b64decode(doc["replay_header"])
                    if doc.get("replay_header") else b""
                ),
            )
        except (KeyError, ValueError, json.JSONDecodeError) as exc:
            raise ReproError(f"corrupt flow state: {exc}") from exc
