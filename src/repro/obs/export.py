"""Exporters: Prometheus-style text exposition and JSON snapshots.

Both walk the process-wide weak registry index
(:func:`repro.sim.metrics.all_registries`), so exporting needs no plumbing:
any ``MetricRegistry`` a testbed created is visible until it is garbage
collected.  Histograms are exported from their running aggregates and
quantile sketch, so export works identically before and after a histogram
spills its raw samples.
"""

from __future__ import annotations

import json
import re
from typing import Any, Dict, List, Optional

from repro.obs.plane import OBS, ObsPlane
from repro.sim.metrics import MetricRegistry, all_registries

_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")

EXPORT_QUANTILES = (0.5, 0.9, 0.99)


def _sanitize(name: str) -> str:
    """Prometheus metric names allow [a-zA-Z0-9_:] only."""
    out = _NAME_RE.sub("_", name)
    if out and out[0].isdigit():
        out = "_" + out
    return out


def _registries(registries: Optional[List[MetricRegistry]]) -> List[MetricRegistry]:
    return all_registries() if registries is None else list(registries)


def render_prometheus(registries: Optional[List[MetricRegistry]] = None,
                      prefix: str = "repro") -> str:
    """Text exposition format: one block per metric, labelled by registry."""
    lines: List[str] = []
    for reg in _registries(registries):
        label = f'{{registry="{reg.name}"}}'
        for name in sorted(reg.counters):
            metric = f"{prefix}_{_sanitize(name)}_total"
            lines.append(f"# TYPE {metric} counter")
            lines.append(f"{metric}{label} {reg.counters[name].value}")
        for name in sorted(reg.gauges):
            metric = f"{prefix}_{_sanitize(name)}"
            lines.append(f"# TYPE {metric} gauge")
            lines.append(f"{metric}{label} {reg.gauges[name].value}")
        for name in sorted(reg.histograms):
            hist = reg.histograms[name]
            metric = f"{prefix}_{_sanitize(name)}"
            lines.append(f"# TYPE {metric} summary")
            if hist.count:
                for q in EXPORT_QUANTILES:
                    lines.append(
                        f'{metric}{{registry="{reg.name}",quantile="{q}"}} '
                        f"{hist.quantile(q)}"
                    )
            lines.append(f"{metric}_count{label} {hist.count}")
            lines.append(f"{metric}_sum{label} "
                         f"{hist.count and hist.mean() * hist.count}")
    return "\n".join(lines) + ("\n" if lines else "")


def registry_snapshot(reg: MetricRegistry) -> Dict[str, Any]:
    """One registry's metrics as plain data."""
    out: Dict[str, Any] = {"name": reg.name}
    if reg.counters:
        out["counters"] = {n: c.value for n, c in sorted(reg.counters.items())}
    if reg.gauges:
        out["gauges"] = {n: g.value for n, g in sorted(reg.gauges.items())}
    if reg.histograms:
        out["histograms"] = {
            n: {
                "count": h.count,
                "mean": h.mean() if h.count else None,
                "min": h.min() if h.count else None,
                "max": h.max() if h.count else None,
                "p50": h.percentile(50.0) if h.count else None,
                "p90": h.percentile(90.0) if h.count else None,
                "p99": h.percentile(99.0) if h.count else None,
                "spilled": h.spilled,
            }
            for n, h in sorted(reg.histograms.items())
        }
    if reg.series:
        out["timeseries"] = {
            n: {"samples": len(s),
                "last": s.values[-1] if s.values else None}
            for n, s in sorted(reg.series.items())
        }
    return out


def obs_snapshot(plane: Optional[ObsPlane] = None) -> Dict[str, Any]:
    """The observability plane's own state as plain data: span-duration
    sketches, profiler rows, and flight-recorder occupancy."""
    plane = plane or OBS
    tracer = plane.tracer
    return {
        "enabled": plane.enabled,
        "spans": {
            "retained": len(tracer.spans),
            "dropped": tracer.dropped,
            "sketches": {
                f"{comp or '-'}:{name}": sketch.to_dict()
                for (comp, name), sketch in sorted(tracer.sketches.items())
            },
        },
        "profiler": {
            "total_cpu_seconds": plane.profiler.total(),
            "rows": plane.profiler.rows(),
        },
        "flight_recorders": {
            name: {
                "buffered": len(plane.recorders.recorder(name)),
                "total": plane.recorders.recorder(name).total,
            }
            for name in plane.recorders.components()
        },
    }


def render_json(registries: Optional[List[MetricRegistry]] = None,
                plane: Optional[ObsPlane] = None, indent: int = 2) -> str:
    """Everything -- metric registries plus the obs plane -- as one JSON
    document."""
    doc = {
        "schema": "repro-obs/v1",
        "registries": [registry_snapshot(r) for r in _registries(registries)],
        "obs": obs_snapshot(plane),
    }
    return json.dumps(doc, indent=indent, sort_keys=True)
