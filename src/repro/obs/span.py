"""Span-based request tracing in simulated time.

A *span* is a named interval of sim-time attributed to a component, with an
optional parent -- the building block of a request waterfall: the client's
``http.request`` span is the root; the Yoda instance's ``storage_a`` /
``server_connect`` / ``storage_b`` spans and the KV client's per-op spans
hang below it, correlated by a *trace context* ``(trace_id, span_id)`` that
rides on packets (``pkt.meta["obs_ctx"]``) across the wire.

Determinism: span and trace IDs come from plain counters -- the tracer
never draws randomness and never schedules events, so recording spans can
never perturb the simulated schedule (the zero-perturbation rule the golden
trace suite enforces).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.obs.sketch import QuantileSketch

# A context is (trace_id, span_id): enough to parent a child span.
Ctx = Tuple[int, int]

# Bound on retained finished spans: beyond this the tracer keeps counting
# durations in the sketches but stops retaining span objects, so a long run
# cannot grow without bound.
DEFAULT_MAX_SPANS = 250_000


class Span:
    """One named sim-time interval.  ``end is None`` until finished."""

    __slots__ = (
        "trace_id",
        "span_id",
        "parent_id",
        "name",
        "component",
        "start",
        "end",
        "attrs",
    )

    def __init__(
        self,
        trace_id: int,
        span_id: int,
        parent_id: Optional[int],
        name: str,
        component: str,
        start: float,
    ):
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.component = component
        self.start = start
        self.end: Optional[float] = None
        self.attrs: Optional[Dict[str, Any]] = None

    @property
    def duration(self) -> float:
        if self.end is None:
            raise ValueError(f"span {self.name!r} is still open")
        return self.end - self.start

    @property
    def finished(self) -> bool:
        return self.end is not None

    def attr(self, key: str, default: Any = None) -> Any:
        if self.attrs is None:
            return default
        return self.attrs.get(key, default)

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "component": self.component,
            "start": self.start,
            "end": self.end,
        }
        if self.attrs:
            out["attrs"] = dict(self.attrs)
        return out

    def __repr__(self) -> str:
        end = f"{self.end:.6f}" if self.end is not None else "open"
        return (
            f"Span({self.name!r}, {self.component!r}, trace={self.trace_id}, "
            f"start={self.start:.6f}, end={end})"
        )


class Tracer:
    """Creates, finishes, and retains spans.

    The tracer is passive: starting or ending a span touches only Python
    objects.  Finished span durations also feed a per-``(component, name)``
    quantile sketch, so quantiles over huge span populations stay O(1).
    """

    def __init__(self, plane, max_spans: int = DEFAULT_MAX_SPANS):
        self._plane = plane
        self.max_spans = max_spans
        self.spans: List[Span] = []
        self.dropped = 0
        self.sketches: Dict[Tuple[str, str], QuantileSketch] = {}
        self._next_trace = 0
        self._next_span = 0

    # ----------------------------------------------------------- creation --
    def new_trace_id(self) -> int:
        self._next_trace += 1
        return self._next_trace

    def start(
        self,
        name: str,
        component: str = "",
        ctx: Optional[Ctx] = None,
        start: Optional[float] = None,
        attrs: Optional[Dict[str, Any]] = None,
    ) -> Span:
        """Open a span.  ``ctx`` parents it into an existing trace; without
        one, the span roots a fresh trace."""
        if ctx is not None:
            trace_id, parent_id = ctx
        else:
            trace_id, parent_id = self.new_trace_id(), None
        self._next_span += 1
        span = Span(
            trace_id,
            self._next_span,
            parent_id,
            name,
            component,
            self._plane.now() if start is None else start,
        )
        if attrs:
            span.attrs = dict(attrs)
        if len(self.spans) < self.max_spans:
            self.spans.append(span)
        else:
            self.dropped += 1
        return span

    def end(self, span: Span, end: Optional[float] = None, **attrs: Any) -> None:
        """Finish a span (idempotent: a second end is ignored)."""
        if span.end is not None:
            return
        span.end = self._plane.now() if end is None else end
        if attrs:
            if span.attrs is None:
                span.attrs = {}
            span.attrs.update(attrs)
        key = (span.component, span.name)
        sketch = self.sketches.get(key)
        if sketch is None:
            sketch = self.sketches[key] = QuantileSketch()
        sketch.add(span.end - span.start)

    def event(
        self,
        name: str,
        component: str = "",
        ctx: Optional[Ctx] = None,
        attrs: Optional[Dict[str, Any]] = None,
    ) -> Span:
        """A zero-duration span: a point-in-time annotation on a trace."""
        span = self.start(name, component, ctx=ctx, attrs=attrs)
        self.end(span, end=span.start)
        return span

    @staticmethod
    def ctx_of(span: Span) -> Ctx:
        return (span.trace_id, span.span_id)

    # -------------------------------------------------------------- reads --
    def drain(self) -> List[Span]:
        """Return all retained spans and forget them (sketches are kept)."""
        out = self.spans
        self.spans = []
        return out

    def traces(self) -> Dict[int, List[Span]]:
        """Retained spans grouped by trace, each sorted by start time."""
        out: Dict[int, List[Span]] = {}
        for span in self.spans:
            out.setdefault(span.trace_id, []).append(span)
        for spans in out.values():
            spans.sort(key=lambda s: (s.start, s.span_id))
        return out

    def finished(self, name: Optional[str] = None) -> List[Span]:
        return [
            s for s in self.spans
            if s.end is not None and (name is None or s.name == name)
        ]

    def durations(self, name: str, component: Optional[str] = None) -> List[float]:
        return [
            s.end - s.start
            for s in self.spans
            if s.end is not None and s.name == name
            and (component is None or s.component == component)
        ]
