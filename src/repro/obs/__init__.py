"""``repro.obs`` -- the observability plane.

Span tracing, streaming quantile sketches, per-component flight recorders,
and a sim-time profiler, behind one switch: the ``OBS`` singleton.  See
DESIGN.md section 6 for the span model and the zero-perturbation rule.

Only leaf modules are imported here (the exporters and report renderers in
``repro.obs.export`` / ``repro.obs.report`` import ``repro.sim.metrics``
and are pulled in on demand), so hot-path modules can import ``OBS``
without dragging in anything heavy or cyclic.
"""

from repro.obs.plane import OBS, ObsPlane
from repro.obs.profiler import SimProfiler
from repro.obs.recorder import FlightRecorder, FlightRecorderHub
from repro.obs.sketch import QuantileSketch
from repro.obs.span import Span, Tracer

__all__ = [
    "OBS",
    "ObsPlane",
    "Span",
    "Tracer",
    "QuantileSketch",
    "FlightRecorder",
    "FlightRecorderHub",
    "SimProfiler",
]
