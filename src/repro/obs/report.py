"""Human-readable rendering of what the observability plane collected.

The centrepiece is the request waterfall: one trace's spans laid out on a
shared time axis, children indented under their parents -- the view that
turns "this request took 240 ms" into *where* those 240 ms went (TCPStore
writes? the rule scan? the backend handshake?).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.obs.plane import OBS, ObsPlane
from repro.obs.span import Span

WATERFALL_WIDTH = 48


def _depths(spans: List[Span]) -> Dict[int, int]:
    """span_id -> tree depth within one trace (orphans sit at depth 0)."""
    by_id = {s.span_id: s for s in spans}
    depths: Dict[int, int] = {}

    def depth_of(span: Span) -> int:
        cached = depths.get(span.span_id)
        if cached is not None:
            return cached
        parent = by_id.get(span.parent_id) if span.parent_id is not None else None
        d = 0 if parent is None else depth_of(parent) + 1
        depths[span.span_id] = d
        return d

    for span in spans:
        depth_of(span)
    return depths


def render_waterfall(spans: List[Span], width: int = WATERFALL_WIDTH) -> str:
    """One trace's spans as an indented text waterfall."""
    if not spans:
        return "(empty trace)"
    spans = sorted(spans, key=lambda s: (s.start, s.span_id))
    t0 = min(s.start for s in spans)
    t1 = max((s.end if s.end is not None else s.start) for s in spans)
    extent = (t1 - t0) or 1e-9
    depths = _depths(spans)
    label_width = max(
        len("  " * depths[s.span_id] + f"{s.name} [{s.component or '-'}]")
        for s in spans
    )
    lines = [
        f"trace {spans[0].trace_id}: {len(spans)} spans, "
        f"{extent * 1e3:.2f} ms total"
    ]
    for s in spans:
        label = "  " * depths[s.span_id] + f"{s.name} [{s.component or '-'}]"
        lo = round(width * (s.start - t0) / extent)
        if s.end is None:
            bar = " " * lo + "?"
            dur = "   open"
        else:
            hi = round(width * (s.end - t0) / extent)
            bar = " " * lo + "#" * max(1, hi - lo)
            dur = f"{(s.end - s.start) * 1e3:7.2f}"
        lines.append(f"  {label:<{label_width}} |{bar:<{width + 1}}| {dur} ms")
    return "\n".join(lines)


def _span_summary(plane: ObsPlane) -> str:
    tracer = plane.tracer
    if not tracer.sketches:
        return "(no spans recorded)"
    lines = [
        f"{'component:span':<38} {'count':>8} {'p50 ms':>9} "
        f"{'p90 ms':>9} {'p99 ms':>9}",
        "-" * 77,
    ]
    for (comp, name), sketch in sorted(tracer.sketches.items()):
        lines.append(
            f"{(comp or '-') + ':' + name:<38} {sketch.count:>8} "
            f"{sketch.percentile(50) * 1e3:>9.3f} "
            f"{sketch.percentile(90) * 1e3:>9.3f} "
            f"{sketch.percentile(99) * 1e3:>9.3f}"
        )
    lines.append(
        f"({len(tracer.spans)} spans retained, {tracer.dropped} dropped)"
    )
    return "\n".join(lines)


def slowest_trace(plane: ObsPlane,
                  root_name: Optional[str] = None) -> Optional[List[Span]]:
    """The finished trace with the slowest root span (for the waterfall)."""
    traces = plane.tracer.traces()
    best: Optional[List[Span]] = None
    best_dur = -1.0
    for spans in traces.values():
        root = next(
            (s for s in spans
             if s.parent_id is None and s.end is not None
             and (root_name is None or s.name == root_name)),
            None,
        )
        if root is None:
            continue
        dur = root.end - root.start
        if dur > best_dur:
            best_dur = dur
            best = spans
    return best


def render_report(plane: Optional[ObsPlane] = None,
                  recorder_tail: int = 12) -> str:
    """The full text report: span summary, the slowest request's
    waterfall, the sim-CPU profile, and the flight recorders' tail."""
    plane = plane or OBS
    sections = [
        "== span summary " + "=" * 45,
        _span_summary(plane),
    ]
    slowest = slowest_trace(plane)
    if slowest is not None:
        sections += [
            "",
            "== slowest request " + "=" * 42,
            render_waterfall(slowest),
        ]
    sections += [
        "",
        "== simulated CPU profile " + "=" * 36,
        plane.profiler.top_table(),
        "",
        plane.profiler.flamegraph(),
        "",
        "== flight recorders (last events) " + "=" * 27,
    ]
    tail = plane.recorders.dump_tail(last=recorder_tail)
    sections.append("\n".join(tail) if tail else "(no flight-recorder events)")
    return "\n".join(sections)
