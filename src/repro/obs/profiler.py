"""Sim-time profiler: where does simulated CPU go?

``repro.sim.cpu.CpuModel`` charges every piece of work a simulated cost
(packet processing, rule scans, KV ops, splicing).  When the observability
plane is enabled, each ``execute()`` reports its service time here, tagged
``(component, phase)`` -- and the profiler renders a top table and a text
flamegraph of simulated CPU seconds, the simulation's answer to "which
component ate the budget".

Aggregation is two plain dict updates per sample: O(1), allocation-free
after warmup, and (like the rest of the plane) never touches the event
loop.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

BAR_WIDTH = 40


class SimProfiler:
    """Accumulates simulated CPU seconds per (component, phase)."""

    def __init__(self):
        self._seconds: Dict[Tuple[str, str], float] = {}
        self._calls: Dict[Tuple[str, str], int] = {}

    def add(self, component: str, phase: str, seconds: float) -> None:
        key = (component, phase)
        self._seconds[key] = self._seconds.get(key, 0.0) + seconds
        self._calls[key] = self._calls.get(key, 0) + 1

    # -------------------------------------------------------------- reads --
    def total(self) -> float:
        return sum(self._seconds.values())

    def rows(self) -> List[Dict]:
        """Per-(component, phase) rows, hottest first."""
        out = [
            {
                "component": comp,
                "phase": phase,
                "cpu_seconds": secs,
                "calls": self._calls[(comp, phase)],
            }
            for (comp, phase), secs in self._seconds.items()
        ]
        out.sort(key=lambda r: -r["cpu_seconds"])
        return out

    def by_component(self) -> Dict[str, float]:
        out: Dict[str, float] = {}
        for (comp, _), secs in self._seconds.items():
            out[comp] = out.get(comp, 0.0) + secs
        return out

    # ----------------------------------------------------------- renderers --
    def top_table(self, limit: int = 20) -> str:
        rows = self.rows()[:limit]
        if not rows:
            return "(no simulated CPU recorded)"
        total = self.total() or 1.0
        lines = [
            f"{'component':<20} {'phase':<14} {'cpu s':>10} {'calls':>9} {'%':>6}",
            "-" * 63,
        ]
        for r in rows:
            lines.append(
                f"{r['component']:<20} {r['phase']:<14} "
                f"{r['cpu_seconds']:>10.4f} {r['calls']:>9} "
                f"{100.0 * r['cpu_seconds'] / total:>5.1f}%"
            )
        lines.append("-" * 63)
        lines.append(f"{'total':<35} {self.total():>10.4f}")
        return "\n".join(lines)

    def flamegraph(self) -> str:
        """Two-level text flamegraph: component bars, phase sub-bars."""
        by_comp = self.by_component()
        if not by_comp:
            return "(no simulated CPU recorded)"
        total = self.total() or 1.0
        lines: List[str] = []
        for comp in sorted(by_comp, key=lambda c: -by_comp[c]):
            comp_secs = by_comp[comp]
            bar = "#" * max(1, round(BAR_WIDTH * comp_secs / total))
            lines.append(f"{comp:<22} {bar:<{BAR_WIDTH}} {comp_secs:.4f}s")
            phases = {
                phase: secs
                for (c, phase), secs in self._seconds.items()
                if c == comp
            }
            for phase in sorted(phases, key=lambda p: -phases[p]):
                sub = "=" * max(1, round(BAR_WIDTH * phases[phase] / total))
                lines.append(
                    f"  {phase:<20} {sub:<{BAR_WIDTH}} {phases[phase]:.4f}s"
                )
        return "\n".join(lines)
