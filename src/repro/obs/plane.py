"""The observability plane: one process-wide switchboard, ``OBS``.

Hot paths guard every instrumentation hook behind a single attribute load
(``if OBS.enabled:``), so with the plane disabled the per-packet cost is
one branch -- the overhead the ``obs-overhead`` benchmark polices.

The plane is **zero-perturbation by construction**:

- it never schedules events, so enabling it cannot change the order or
  timing of anything on the loop;
- it never draws randomness, so seeded runs stay bit-identical (span IDs
  are plain counters);
- trace contexts ride in ``Packet.meta``, which nothing on the data path
  branches on.

The golden-trace suite runs all seven chaos scenarios with the plane
enabled and asserts the schedule digests are bit-identical to the
disabled run.

Sim time comes from a pluggable clock (``attach_clock``): the Testbed and
the chaos engine attach their event loop's ``now`` when they build, so the
plane can be enabled before any loop exists.
"""

from __future__ import annotations

from typing import Callable, Optional, Tuple

from repro.obs.profiler import SimProfiler
from repro.obs.recorder import FlightRecorderHub
from repro.obs.span import Span, Tracer  # noqa: F401  (re-exported)


class ObsPlane:
    """Process-wide observability switchboard (use the ``OBS`` singleton)."""

    __slots__ = ("enabled", "tracer", "profiler", "recorders", "ctx", "_clock")

    def __init__(self):
        self.enabled = False
        self.tracer = Tracer(self)
        self.profiler = SimProfiler()
        self.recorders = FlightRecorderHub()
        # Ambient context for synchronous attribution: a component sets
        # this around a call that synchronously issues child work (e.g.
        # the Yoda instance around TCPStore writes, so KV-op spans parent
        # to the storage span without threading a ctx argument through
        # every layer).  Single-threaded simulation makes this safe.
        self.ctx: Optional[Tuple[int, int]] = None
        self._clock: Optional[Callable[[], float]] = None

    # ------------------------------------------------------------ control --
    def enable(self, clock: Optional[Callable[[], float]] = None) -> None:
        """Turn the plane on with fresh collectors."""
        self.tracer = Tracer(self)
        self.profiler = SimProfiler()
        self.recorders = FlightRecorderHub()
        self.ctx = None
        if clock is not None:
            self._clock = clock
        self.enabled = True

    def disable(self) -> None:
        """Turn the plane off.  Collected data stays readable until the
        next ``enable()`` resets it."""
        self.enabled = False
        self.ctx = None
        self._clock = None

    def attach_clock(self, clock: Callable[[], float]) -> None:
        """Point the plane at a simulation clock (an ``EventLoop.now``)."""
        self._clock = clock

    def now(self) -> float:
        clock = self._clock
        return clock() if clock is not None else 0.0

    # -------------------------------------------------------- conveniences --
    def flight(self, component: str, kind: str, detail: str) -> None:
        """Note an event into ``component``'s flight-recorder ring."""
        self.recorders.note(self.now(), component, kind, detail)


OBS = ObsPlane()
