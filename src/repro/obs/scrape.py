"""Time-series scraper: periodic snapshots of live metric registries.

The experiments used to build time series by pushing every sample into
all-samples histograms on hot paths; the scraper inverts that: hot paths
update O(1) counters/gauges, and a *pull* loop samples them on a fixed
cadence into bounded ``TimeSeries`` -- Prometheus's model, in sim time.

Unlike the rest of the observability plane the scraper DOES schedule loop
events (that is its job), so it is strictly opt-in tooling: experiments and
the ``repro obs`` CLI start one explicitly; nothing on a data path ever
does.  The golden-trace suite runs with the plane enabled but no scraper,
which is why "obs enabled" stays zero-perturbation.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.sim.events import EventLoop
from repro.sim.metrics import MetricRegistry, TimeSeries, all_registries
from repro.sim.process import PeriodicTask

DEFAULT_SCRAPE_INTERVAL = 0.25


class MetricScraper:
    """Samples counters and gauges of a registry set into time series.

    Counters are sampled both as running totals (``*.total``) and as
    per-interval deltas (``*.rate`` -- events per second over the scrape
    interval); gauges as instantaneous values.
    """

    def __init__(
        self,
        loop: EventLoop,
        registries: Optional[List[MetricRegistry]] = None,
        interval: float = DEFAULT_SCRAPE_INTERVAL,
        registry_provider: Optional[Callable[[], List[MetricRegistry]]] = None,
    ):
        self.loop = loop
        self.interval = interval
        # fixed set, or a provider re-evaluated each scrape (defaults to
        # every live registry in the process)
        self._provider = (
            registry_provider
            if registry_provider is not None
            else (lambda: registries) if registries is not None
            else all_registries
        )
        self.series: Dict[str, TimeSeries] = {}
        self.scrapes = 0
        self._last_counts: Dict[str, int] = {}
        self._last_seen_at: Dict[str, float] = {}
        self._task = PeriodicTask(loop, interval, self.scrape_once)

    def start(self) -> "MetricScraper":
        self._task.start()
        return self

    def stop(self) -> None:
        self._task.stop()

    def _series(self, key: str) -> TimeSeries:
        ts = self.series.get(key)
        if ts is None:
            ts = self.series[key] = TimeSeries(key)
        return ts

    def scrape_once(self) -> None:
        now = self.loop.now()
        self.scrapes += 1
        for reg in self._provider():
            for name, counter in reg.counters.items():
                key = f"{reg.name}.{name}"
                self._series(f"{key}.total").record(now, counter.value)
                last = self._last_counts.get(key)
                last_at = self._last_seen_at.get(key)
                self._last_counts[key] = counter.value
                self._last_seen_at[key] = now
                # A counter's first sample has no baseline: attributing its
                # whole history to one interval fabricates a rate spike, so
                # the first scrape only records the baseline.  Across scrape
                # gaps (a stopped/restarted scraper, a registry that appears
                # late via the provider) the delta is divided by the time
                # actually elapsed for *this* key, not the nominal interval.
                if last is None or last_at is None or now <= last_at:
                    continue
                self._series(f"{key}.rate").record(
                    now, (counter.value - last) / (now - last_at)
                )
            for name, gauge in reg.gauges.items():
                self._series(f"{reg.name}.{name}").record(now, gauge.value)

    # -------------------------------------------------------------- reads --
    def names(self) -> List[str]:
        return sorted(self.series)

    def get(self, name: str) -> TimeSeries:
        return self.series[name]
