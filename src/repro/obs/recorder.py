"""Per-component flight recorders: bounded last-N-events rings.

Every component worth debugging (a Yoda instance, the KV client of a host,
the L4 mux, the chaos engine itself) gets a ring of its most recent notable
events -- routing decisions, KV timeouts, dropped packets, fault
injections.  The ring is bounded, so recording costs O(1) and an
always-on recorder cannot grow a long run's memory.

The payoff is forensics: when a chaos invariant monitor fires, it dumps the
offending components' rings into the violation report, turning "invariant
violated at t=12.4" into the last N things that actually happened around
the failure.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

DEFAULT_RING_CAPACITY = 256

# (time, kind, detail)
FlightEvent = Tuple[float, str, str]


class FlightRecorder:
    """One component's bounded event ring."""

    __slots__ = ("component", "ring", "total")

    def __init__(self, component: str, capacity: int = DEFAULT_RING_CAPACITY):
        self.component = component
        self.ring: Deque[FlightEvent] = deque(maxlen=capacity)
        self.total = 0  # events ever noted, including ones the ring evicted

    def note(self, time: float, kind: str, detail: str) -> None:
        self.ring.append((time, kind, detail))
        self.total += 1

    def events(self, last: Optional[int] = None) -> List[FlightEvent]:
        out = list(self.ring)
        if last is not None:
            out = out[-last:]
        return out

    def dump(self, last: Optional[int] = None) -> List[str]:
        return [
            f"{t:10.6f} [{self.component}] {kind}: {detail}"
            for t, kind, detail in self.events(last)
        ]

    def __len__(self) -> int:
        return len(self.ring)


class FlightRecorderHub:
    """All component rings, keyed by component name."""

    def __init__(self, capacity: int = DEFAULT_RING_CAPACITY):
        self.capacity = capacity
        self._recorders: Dict[str, FlightRecorder] = {}

    def recorder(self, component: str) -> FlightRecorder:
        rec = self._recorders.get(component)
        if rec is None:
            rec = self._recorders[component] = FlightRecorder(
                component, self.capacity
            )
        return rec

    def note(self, time: float, component: str, kind: str, detail: str) -> None:
        self.recorder(component).note(time, kind, detail)

    def components(self) -> List[str]:
        return sorted(self._recorders)

    def dump(self, component: str, last: Optional[int] = None) -> List[str]:
        rec = self._recorders.get(component)
        return rec.dump(last) if rec is not None else []

    def dump_tail(self, last: int = 20,
                  components: Optional[List[str]] = None) -> List[str]:
        """The most recent ``last`` events across components (or a subset),
        merged and time-ordered -- the default forensic snapshot."""
        merged: List[Tuple[float, str, str, str]] = []
        for name, rec in self._recorders.items():
            if components is not None and name not in components:
                continue
            for t, kind, detail in rec.ring:
                merged.append((t, name, kind, detail))
        merged.sort(key=lambda e: e[0])
        return [
            f"{t:10.6f} [{name}] {kind}: {detail}"
            for t, name, kind, detail in merged[-last:]
        ]

    def total_events(self) -> int:
        return sum(rec.total for rec in self._recorders.values())
