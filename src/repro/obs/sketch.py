"""Streaming quantile sketch (DDSketch-style, relative-error guaranteed).

The observability plane needs per-series latency quantiles at "millions of
users" scale, where keeping every sample (the old ``Histogram`` strategy)
costs O(n) memory and an O(n log n) sort on every read.  This sketch keeps
O(log(max/min) / log(gamma)) integer buckets -- a few hundred for any
realistic latency range -- and answers any quantile with a guaranteed
*relative* error ``alpha``:

    |q_est - q_true| <= alpha * q_true

Buckets are logarithmic: positive value ``v`` lands in bucket
``ceil(log(v) / log(gamma))`` with ``gamma = (1 + alpha) / (1 - alpha)``;
the representative value ``2 * gamma**i / (gamma + 1)`` is within ``alpha``
of every value the bucket covers.  Count, sum, min and max are tracked
exactly.  Merging two sketches with the same ``alpha`` is lossless.

No dependency on the rest of the simulator: this module is imported by
``repro.sim.metrics`` (the Histogram spill path) and must stay leaf-level.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Tuple

DEFAULT_ALPHA = 0.005  # 0.5 % relative error

# Values with magnitude below this collapse into the zero bucket; for
# sim-time latencies (>= microseconds) this loses nothing.
MIN_TRACKABLE = 1e-12


class QuantileSketch:
    """DDSketch-style log-bucketed quantile estimator.

    Args:
        alpha: relative-error bound for quantile answers, in (0, 1).
    """

    __slots__ = (
        "alpha",
        "_gamma",
        "_log_gamma",
        "_buckets",
        "_neg_buckets",
        "_zero",
        "_count",
        "_sum",
        "_min",
        "_max",
    )

    def __init__(self, alpha: float = DEFAULT_ALPHA):
        if not 0.0 < alpha < 1.0:
            raise ValueError(f"alpha must be in (0, 1), got {alpha}")
        self.alpha = alpha
        self._gamma = (1.0 + alpha) / (1.0 - alpha)
        self._log_gamma = math.log(self._gamma)
        self._buckets: Dict[int, int] = {}
        self._neg_buckets: Dict[int, int] = {}
        self._zero = 0
        self._count = 0
        self._sum = 0.0
        self._min = math.inf
        self._max = -math.inf

    # ------------------------------------------------------------- ingest --
    def add(self, value: float) -> None:
        self._count += 1
        self._sum += value
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value
        if value > MIN_TRACKABLE:
            idx = math.ceil(math.log(value) / self._log_gamma)
            self._buckets[idx] = self._buckets.get(idx, 0) + 1
        elif value < -MIN_TRACKABLE:
            idx = math.ceil(math.log(-value) / self._log_gamma)
            self._neg_buckets[idx] = self._neg_buckets.get(idx, 0) + 1
        else:
            self._zero += 1

    def extend(self, values: Iterable[float]) -> None:
        for v in values:
            self.add(v)

    def merge(self, other: "QuantileSketch") -> None:
        if other.alpha != self.alpha:
            raise ValueError(
                f"cannot merge sketches with alpha {other.alpha} into {self.alpha}"
            )
        for idx, n in other._buckets.items():
            self._buckets[idx] = self._buckets.get(idx, 0) + n
        for idx, n in other._neg_buckets.items():
            self._neg_buckets[idx] = self._neg_buckets.get(idx, 0) + n
        self._zero += other._zero
        self._count += other._count
        self._sum += other._sum
        self._min = min(self._min, other._min)
        self._max = max(self._max, other._max)

    # -------------------------------------------------------------- reads --
    def __len__(self) -> int:
        return self._count

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    def mean(self) -> float:
        if not self._count:
            raise ValueError("sketch is empty")
        return self._sum / self._count

    def min(self) -> float:
        if not self._count:
            raise ValueError("sketch is empty")
        return self._min

    def max(self) -> float:
        if not self._count:
            raise ValueError("sketch is empty")
        return self._max

    def _bucket_value(self, idx: int) -> float:
        # midpoint representative: within alpha of every value in bucket idx
        return 2.0 * self._gamma ** idx / (self._gamma + 1.0)

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile, ``q`` in [0, 1]."""
        if not self._count:
            raise ValueError("sketch is empty")
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile {q} out of range [0, 1]")
        if q == 0.0:
            return self._min
        if q == 1.0:
            return self._max
        rank = q * (self._count - 1)
        seen = 0
        # negatives (most negative first), then zeros, then positives
        for idx in sorted(self._neg_buckets, reverse=True):
            seen += self._neg_buckets[idx]
            if seen > rank:
                return -self._bucket_value(idx)
        seen += self._zero
        if seen > rank:
            return 0.0
        for idx in sorted(self._buckets):
            seen += self._buckets[idx]
            if seen > rank:
                return self._bucket_value(idx)
        return self._max

    def percentile(self, p: float) -> float:
        """Estimate the ``p``-th percentile, ``p`` in [0, 100]."""
        if not 0.0 <= p <= 100.0:
            raise ValueError(f"percentile {p} out of range [0, 100]")
        return self.quantile(p / 100.0)

    def median(self) -> float:
        return self.quantile(0.5)

    @property
    def bucket_count(self) -> int:
        """Number of live buckets -- the memory footprint, in O(1) units."""
        return len(self._buckets) + len(self._neg_buckets) + (1 if self._zero else 0)

    def to_dict(self) -> Dict:
        """JSON-friendly summary (used by the exporters)."""
        out: Dict = {
            "alpha": self.alpha,
            "count": self._count,
            "buckets": self.bucket_count,
        }
        if self._count:
            out.update(
                sum=self._sum,
                min=self._min,
                max=self._max,
                mean=self._sum / self._count,
                quantiles={
                    "p50": self.quantile(0.50),
                    "p90": self.quantile(0.90),
                    "p99": self.quantile(0.99),
                },
            )
        return out

    def cdf_points(self, points: int = 50) -> List[Tuple[float, float]]:
        """Approximate (value, cumulative_fraction) pairs from the buckets."""
        if not self._count:
            return []
        out: List[Tuple[float, float]] = []
        seen = 0
        for idx in sorted(self._neg_buckets, reverse=True):
            seen += self._neg_buckets[idx]
            out.append((-self._bucket_value(idx), seen / self._count))
        if self._zero:
            seen += self._zero
            out.append((0.0, seen / self._count))
        for idx in sorted(self._buckets):
            seen += self._buckets[idx]
            out.append((self._bucket_value(idx), seen / self._count))
        if len(out) > points:
            step = max(1, len(out) // points)
            out = out[::step] + ([out[-1]] if out[-1] not in out[::step] else [])
        return out

    def __repr__(self) -> str:
        return (
            f"QuantileSketch(alpha={self.alpha}, count={self._count}, "
            f"buckets={self.bucket_count})"
        )
