"""CPU cost/queueing model for simulated servers.

The paper's performance results are about where CPUs saturate (a YODA
instance at 12K req/s, a Memcached server at 80K req/s) and what latency
work experiences on the way.  :class:`CpuModel` is a single logical queue:
each unit of work costs some CPU seconds, runs after everything queued
before it, and utilization is the busy fraction of wall-clock time.
Multi-core VMs are modeled by dividing per-item cost by the core count
(the paper's packet driver hash-spreads flows across K per-core queues, so
aggregate behaviour is what matters).
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.obs import OBS
from repro.sim.events import EventLoop
from repro.sim.metrics import TimeSeries


class CpuModel:
    """A work-conserving single-queue CPU with utilization accounting.

    ``owner`` names the component for the sim-time profiler; each
    ``execute`` may carry a ``phase`` tag, so enabled observability can
    attribute simulated CPU seconds per (component, phase).
    """

    def __init__(self, loop: EventLoop, cores: float = 1.0,
                 max_queue_delay: Optional[float] = None, owner: str = ""):
        if cores <= 0:
            raise ValueError(f"cores must be positive, got {cores}")
        self.loop = loop
        self.cores = cores
        self.owner = owner
        self.max_queue_delay = max_queue_delay
        self.slowdown = 1.0  # gray-failure multiplier on per-item cost
        self._busy_until = 0.0
        self._busy_accum = 0.0  # total busy seconds ever scheduled
        self._window_start = 0.0
        self._window_busy_marker = 0.0
        self.dropped = 0
        self.executed = 0

    def execute(self, cost: float, fn: Optional[Callable[..., Any]] = None,
                *args: Any, phase: str = "") -> Optional[float]:
        """Queue work costing ``cost`` CPU-seconds; run ``fn`` at completion.

        Returns the completion time, or None if the work was shed because
        the queue delay bound was exceeded.
        """
        if cost < 0:
            raise ValueError(f"cost must be >= 0, got {cost}")
        now = self.loop.now()
        start = max(now, self._busy_until)
        if self.max_queue_delay is not None and start - now > self.max_queue_delay:
            self.dropped += 1
            if OBS.enabled:
                OBS.flight(self.owner or "cpu", "shed",
                           f"queue delay {start - now:.6f}s > "
                           f"{self.max_queue_delay}s, work dropped")
            return None
        service = cost * self.slowdown / self.cores
        finish = start + service
        self._busy_until = finish
        self._busy_accum += service
        self.executed += 1
        if OBS.enabled:
            OBS.profiler.add(self.owner or "cpu", phase or "work", service)
        if fn is not None:
            self.loop.call_later(finish - now, fn, *args)
        return finish

    def set_slowdown(self, factor: float) -> None:
        """Gray failure: every unit of work costs ``factor``x as much CPU.

        The host stays up and answers probes, it is just slow -- the
        failure mode health checks are worst at catching.  ``1.0``
        restores normal speed; already-queued work is unaffected.
        """
        if factor <= 0:
            raise ValueError(f"slowdown factor must be positive, got {factor}")
        self.slowdown = factor

    def queue_delay(self) -> float:
        """How long newly arriving work would wait before starting."""
        return max(0.0, self._busy_until - self.loop.now())

    @property
    def busy_seconds(self) -> float:
        """Busy seconds actually elapsed (not counting queued future work)."""
        return self._busy_accum - max(0.0, self._busy_until - self.loop.now())

    def utilization_window(self) -> float:
        """Busy fraction since the last call to :meth:`reset_window`."""
        now = self.loop.now()
        elapsed = now - self._window_start
        if elapsed <= 0:
            return 0.0
        busy = self.busy_seconds - self._window_busy_marker
        return min(1.0, max(0.0, busy / elapsed))

    def reset_window(self) -> None:
        self._window_start = self.loop.now()
        self._window_busy_marker = self.busy_seconds


class CpuSampler:
    """Samples a CpuModel's windowed utilization into a TimeSeries."""

    def __init__(self, loop: EventLoop, cpu: CpuModel, interval: float = 1.0,
                 name: str = "cpu"):
        from repro.sim.process import PeriodicTask  # local import avoids cycle

        self.series = TimeSeries(name)
        self.cpu = cpu
        cpu.reset_window()
        self._task = PeriodicTask(loop, interval, self._sample)
        self._task.start()

    def _sample(self) -> None:
        self.series.record(self.cpu.loop.now(), self.cpu.utilization_window())
        self.cpu.reset_window()

    def stop(self) -> None:
        self._task.stop()
