"""Timer helpers built on the event loop.

:class:`Timer` is a restartable one-shot timer (the shape TCP retransmission
needs); :class:`PeriodicTask` repeats at a fixed interval (the shape the
YODA monitor's 600 ms health ping needs).
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.sim.events import Event, EventLoop


class Timer:
    """A restartable one-shot timer.

    ``start`` (re)arms the timer; ``cancel`` disarms it.  The callback is
    invoked with no arguments when the timer expires.
    """

    __slots__ = ("_loop", "_callback", "_event")

    def __init__(self, loop: EventLoop, callback: Callable[[], Any]):
        self._loop = loop
        self._callback = callback
        self._event: Optional[Event] = None

    @property
    def armed(self) -> bool:
        return self._event is not None and self._event.pending

    def start(self, delay: float) -> None:
        """Arm (or re-arm) the timer to fire ``delay`` seconds from now."""
        self.cancel()
        self._event = self._loop.call_later(delay, self._fire)

    def cancel(self) -> None:
        if self._event is not None:
            self._event.cancel()
            self._event = None

    def _fire(self) -> None:
        self._event = None
        self._callback()


class PeriodicTask:
    """Calls ``callback()`` every ``interval`` seconds until stopped.

    The first call happens ``interval`` seconds after :meth:`start` (or
    immediately when ``fire_now=True``).
    """

    __slots__ = ("_loop", "interval", "_callback", "_event", "_running")

    def __init__(self, loop: EventLoop, interval: float, callback: Callable[[], Any]):
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        self._loop = loop
        self.interval = interval
        self._callback = callback
        self._event: Optional[Event] = None
        self._running = False

    @property
    def running(self) -> bool:
        return self._running

    def start(self, fire_now: bool = False) -> None:
        if self._running:
            return
        self._running = True
        delay = 0.0 if fire_now else self.interval
        self._event = self._loop.call_later(delay, self._tick)

    def stop(self) -> None:
        self._running = False
        if self._event is not None:
            self._event.cancel()
            self._event = None

    def _tick(self) -> None:
        if not self._running:
            return
        self._callback()
        if self._running:
            self._event = self._loop.call_later(self.interval, self._tick)
