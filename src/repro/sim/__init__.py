"""Deterministic discrete-event simulation kernel.

This package provides the substrate every other subsystem runs on:

- :class:`~repro.sim.events.EventLoop` -- a heapq-based scheduler with
  deterministic tie-breaking (FIFO among same-time events).
- :class:`~repro.sim.events.Event` -- a cancellable scheduled callback.
- :class:`~repro.sim.random.SeededRng` -- the single source of randomness.
- :mod:`~repro.sim.metrics` -- counters, gauges and histograms with
  percentile queries, used by every experiment.
- :mod:`~repro.sim.tracing` -- a tcpdump-like packet trace recorder used to
  reproduce Figure 12(b).
"""

from repro.sim.events import Event, EventLoop
from repro.sim.metrics import Counter, Gauge, Histogram, MetricRegistry, TimeSeries
from repro.sim.process import PeriodicTask, Timer
from repro.sim.random import SeededRng
from repro.sim.tracing import PacketTrace, TraceRecord

__all__ = [
    "Event",
    "EventLoop",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricRegistry",
    "TimeSeries",
    "PeriodicTask",
    "Timer",
    "SeededRng",
    "PacketTrace",
    "TraceRecord",
]
