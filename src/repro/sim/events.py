"""Discrete-event loop.

The loop is the heart of the simulator: every packet delivery, TCP timer,
health-check ping and controller action is an :class:`Event` scheduled on a
single :class:`EventLoop`.  Determinism matters -- the paper's failure
recovery behaviour depends on exact orderings (e.g. a retransmission racing
a mapping update) -- so ties at the same simulated time are broken by
insertion order, never by hash order or object identity.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, List, Optional

from repro.errors import SimulationError


class Event:
    """A scheduled callback.

    Events are created through :meth:`EventLoop.call_at` /
    :meth:`EventLoop.call_later`; user code only ever needs
    :meth:`cancel` and the :attr:`cancelled` / :attr:`fired` flags.
    """

    __slots__ = ("time", "seq", "fn", "args", "cancelled", "fired")

    def __init__(self, time: float, seq: int, fn: Callable[..., Any], args: tuple):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False
        self.fired = False

    def cancel(self) -> None:
        """Prevent the event from firing.  Cancelling a fired event is a no-op."""
        self.cancelled = True

    @property
    def pending(self) -> bool:
        """True if the event has neither fired nor been cancelled."""
        return not (self.cancelled or self.fired)

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else ("fired" if self.fired else "pending")
        return f"Event(t={self.time:.6f}, fn={getattr(self.fn, '__name__', self.fn)!r}, {state})"


class EventLoop:
    """A deterministic discrete-event scheduler.

    >>> loop = EventLoop()
    >>> order = []
    >>> _ = loop.call_later(1.0, order.append, "b")
    >>> _ = loop.call_later(0.5, order.append, "a")
    >>> loop.run()
    >>> order
    ['a', 'b']
    """

    def __init__(self, start_time: float = 0.0):
        self._now = float(start_time)
        self._heap: List[Event] = []
        self._counter = itertools.count()
        self._running = False
        self._stopped = False

    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def call_at(self, time: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` at absolute simulated ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule event at t={time:.6f}, which is before now={self._now:.6f}"
            )
        event = Event(float(time), next(self._counter), fn, args)
        heapq.heappush(self._heap, event)
        return event

    def call_later(self, delay: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay!r}")
        return self.call_at(self._now + delay, fn, *args)

    def call_soon(self, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` at the current time (after already-queued
        same-time events)."""
        return self.call_at(self._now, fn, *args)

    def stop(self) -> None:
        """Stop :meth:`run` after the currently executing event returns."""
        self._stopped = True

    def peek_time(self) -> Optional[float]:
        """Time of the next pending event, or None if the queue is empty."""
        self._drop_cancelled()
        return self._heap[0].time if self._heap else None

    def _drop_cancelled(self) -> None:
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> int:
        """Run events in order.

        Args:
            until: if given, stop once the next event would be strictly after
                this time, and advance the clock to ``until``.
            max_events: safety valve; raise if more events than this fire.

        Returns:
            The number of events that fired.
        """
        if self._running:
            raise SimulationError("EventLoop.run() is not reentrant")
        self._running = True
        self._stopped = False
        fired = 0
        try:
            while not self._stopped:
                self._drop_cancelled()
                if not self._heap:
                    break
                event = self._heap[0]
                if until is not None and event.time > until:
                    break
                heapq.heappop(self._heap)
                self._now = event.time
                event.fired = True
                event.fn(*event.args)
                fired += 1
                if max_events is not None and fired >= max_events:
                    raise SimulationError(
                        f"event budget exhausted: {fired} events fired "
                        f"(possible scheduling loop)"
                    )
        finally:
            self._running = False
        if until is not None and self._now < until:
            self._now = until
        return fired

    def run_for(self, duration: float, max_events: Optional[int] = None) -> int:
        """Run for ``duration`` simulated seconds from the current time."""
        return self.run(until=self._now + duration, max_events=max_events)

    def pending_count(self) -> int:
        """Number of pending (non-cancelled) events in the queue."""
        return sum(1 for e in self._heap if not e.cancelled)
