"""Discrete-event loop.

The loop is the heart of the simulator: every packet delivery, TCP timer,
health-check ping and controller action is an :class:`Event` scheduled on a
single :class:`EventLoop`.  Determinism matters -- the paper's failure
recovery behaviour depends on exact orderings (e.g. a retransmission racing
a mapping update) -- so ties at the same simulated time are broken by
insertion order, never by hash order or object identity.

Fast-path design (gated by the golden-trace suite, which pins the packet
schedule bit-for-bit):

- The ready queue is a binary heap of ``(time, seq, event)`` tuples, so
  heap sifting compares C-level floats/ints instead of calling
  ``Event.__lt__``; ``seq`` is unique, so the event object is never
  compared and FIFO tie-breaking is exact.
- Cancellation is a lazy-deletion tombstone: ``Event.cancel`` flips a flag
  in O(1) and the loop skips dead entries when they surface.  The loop
  counts tombstones and compacts the heap in place once they outnumber
  live entries, so N schedule/cancel cycles keep the heap O(live events),
  not O(total ever scheduled).
- Far timers (>= :data:`WHEEL_MIN_DELAY` out -- TCP retransmission, KV op
  timeouts, health-check periods) go to a hashed timer wheel: unsorted
  per-slot buckets keyed by ``int(time / granularity)``.  Scheduling is an
  O(1) append and a timer cancelled before its slot is due -- the common
  case for retransmission timers on a healthy network -- is dropped at
  flush time without ever touching the heap.  A bucket is flushed into
  the heap only when the loop needs events at or before its slot's lower
  bound, so cross-structure ordering is exact: every wheel event re-enters
  the heap carrying its original ``(time, seq)`` key.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.errors import SimulationError

# Timer-wheel slot width in simulated seconds.  Packet deliveries inside
# the datacenter (sub-millisecond) stay on the heap; protocol timers
# (hundreds of ms and up) land in the wheel.
WHEEL_GRANULARITY = 0.05
# Only events at least this far in the future are wheeled; nearer events
# would just be flushed again immediately.
WHEEL_MIN_DELAY = 2 * WHEEL_GRANULARITY
# Compact/sweep once tombstones exceed this floor AND outnumber live
# entries -- keeps amortized O(1) cancellation without thrashing tiny
# queues.
_COMPACT_MIN_DEAD = 64


class Event:
    """A scheduled callback.

    Events are created through :meth:`EventLoop.call_at` /
    :meth:`EventLoop.call_later`; user code only ever needs
    :meth:`cancel` and the :attr:`cancelled` / :attr:`fired` flags.
    """

    __slots__ = ("time", "seq", "fn", "args", "cancelled", "fired",
                 "_loop", "_in_wheel")

    def __init__(self, time: float, seq: int, fn: Callable[..., Any],
                 args: tuple, loop: Optional["EventLoop"] = None):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False
        self.fired = False
        self._loop = loop
        self._in_wheel = False

    def cancel(self) -> None:
        """Prevent the event from firing.  Cancelling a fired event is a no-op."""
        if self.cancelled or self.fired:
            return
        self.cancelled = True
        if self._loop is not None:
            self._loop._note_cancel(self)

    @property
    def pending(self) -> bool:
        """True if the event has neither fired nor been cancelled."""
        return not (self.cancelled or self.fired)

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else ("fired" if self.fired else "pending")
        return f"Event(t={self.time:.6f}, fn={getattr(self.fn, '__name__', self.fn)!r}, {state})"


class EventLoop:
    """A deterministic discrete-event scheduler.

    >>> loop = EventLoop()
    >>> order = []
    >>> _ = loop.call_later(1.0, order.append, "b")
    >>> _ = loop.call_later(0.5, order.append, "a")
    >>> loop.run()
    >>> order
    ['a', 'b']
    """

    def __init__(self, start_time: float = 0.0):
        self._now = float(start_time)
        # ready queue: (time, seq, Event) tuples
        self._heap: List[Tuple[float, int, Event]] = []
        self._counter = itertools.count()
        self._running = False
        self._stopped = False
        # lazy-deletion accounting
        self._heap_dead = 0
        # hashed timer wheel: slot -> unsorted bucket of events
        self._wheel: Dict[int, List[Event]] = {}
        self._slot_heap: List[int] = []  # occupied slots, min-heap
        self._wheel_count = 0  # events currently wheeled (incl. tombstones)
        self._wheel_dead = 0  # cancelled events still in buckets

    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def call_at(self, time: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` at absolute simulated ``time``."""
        now = self._now
        if time < now:
            raise SimulationError(
                f"cannot schedule event at t={time:.6f}, which is before now={now:.6f}"
            )
        time = float(time)
        event = Event(time, next(self._counter), fn, args, self)
        if time - now >= WHEEL_MIN_DELAY:
            slot = int(time / WHEEL_GRANULARITY)
            if slot * WHEEL_GRANULARITY > time:
                # float rounding pushed the slot's lower bound past the
                # event: demote one slot so slot*granularity <= time holds
                # exactly (the flush ordering invariant depends on it)
                slot -= 1
            bucket = self._wheel.get(slot)
            if bucket is None:
                self._wheel[slot] = bucket = [event]
                heapq.heappush(self._slot_heap, slot)
            else:
                bucket.append(event)
            event._in_wheel = True
            self._wheel_count += 1
        else:
            heapq.heappush(self._heap, (time, event.seq, event))
        return event

    def call_later(self, delay: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay!r}")
        return self.call_at(self._now + delay, fn, *args)

    def call_soon(self, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` at the current time (after already-queued
        same-time events)."""
        return self.call_at(self._now, fn, *args)

    def stop(self) -> None:
        """Stop :meth:`run` after the currently executing event returns."""
        self._stopped = True

    def peek_time(self) -> Optional[float]:
        """Time of the next pending event, or None if the queue is empty."""
        heap = self._heap
        while True:
            self._drop_cancelled()
            top = heap[0][0] if heap else None
            if not self._wheel_count or not self._slot_heap:
                return top
            lower_bound = self._slot_heap[0] * WHEEL_GRANULARITY
            if top is not None and top <= lower_bound:
                return top
            self._flush_wheel_until(lower_bound)

    # -- internals ---------------------------------------------------------
    def _note_cancel(self, event: Event) -> None:
        """Tombstone accounting; compact/sweep when the dead outnumber the
        living (amortized O(1) per cancel)."""
        if event._in_wheel:
            self._wheel_dead += 1
            if (self._wheel_dead > _COMPACT_MIN_DEAD
                    and self._wheel_dead * 2 > self._wheel_count):
                self._sweep_wheel()
        else:
            self._heap_dead += 1
            if (self._heap_dead > _COMPACT_MIN_DEAD
                    and self._heap_dead * 2 > len(self._heap)):
                self._compact_heap()

    def _compact_heap(self) -> None:
        # in place: run() holds a local alias to the same list
        self._heap[:] = [entry for entry in self._heap
                         if not entry[2].cancelled]
        heapq.heapify(self._heap)
        self._heap_dead = 0

    def _sweep_wheel(self) -> None:
        wheel = self._wheel
        count = 0
        for slot in list(wheel):
            live = [ev for ev in wheel[slot] if not ev.cancelled]
            if live:
                wheel[slot] = live
                count += len(live)
            else:
                del wheel[slot]
        self._slot_heap[:] = wheel.keys()
        heapq.heapify(self._slot_heap)
        self._wheel_count = count
        self._wheel_dead = 0

    def _flush_wheel_until(self, limit: float) -> None:
        """Move every bucket whose slot lower bound is <= ``limit`` into
        the heap.  Tombstoned events are dropped here, never pushed."""
        heap = self._heap
        slot_heap = self._slot_heap
        wheel = self._wheel
        push = heapq.heappush
        while slot_heap and slot_heap[0] * WHEEL_GRANULARITY <= limit:
            slot = heapq.heappop(slot_heap)
            bucket = wheel.pop(slot, None)
            if bucket is None:
                continue  # stale slot entry
            self._wheel_count -= len(bucket)
            for ev in bucket:
                ev._in_wheel = False
                if ev.cancelled:
                    self._wheel_dead -= 1
                else:
                    push(heap, (ev.time, ev.seq, ev))

    def _drop_cancelled(self) -> None:
        heap = self._heap
        while heap and heap[0][2].cancelled:
            heapq.heappop(heap)
            self._heap_dead -= 1

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> int:
        """Run events in order.

        Args:
            until: if given, stop once the next event would be strictly after
                this time, and advance the clock to ``until``.
            max_events: safety valve; raise if more events than this fire.

        Returns:
            The number of events that fired.
        """
        if self._running:
            raise SimulationError("EventLoop.run() is not reentrant")
        self._running = True
        self._stopped = False
        fired = 0
        heap = self._heap
        pop = heapq.heappop
        inf = float("inf")
        try:
            while not self._stopped:
                # drop dead heads BEFORE deriving the wheel-flush limit: a
                # tombstone at the top would understate it, letting a later
                # heap event fire ahead of earlier still-wheeled events
                while heap and heap[0][2].cancelled:
                    pop(heap)
                    self._heap_dead -= 1
                if self._wheel_count:
                    top = heap[0][0] if heap else inf
                    limit = top if until is None or top < until else until
                    self._flush_wheel_until(limit)
                if not heap:
                    if self._wheel_count and until is None:
                        continue  # flushed buckets were all tombstones
                    break
                t = heap[0][0]
                if until is not None and t > until:
                    break
                self._now = t
                # batch: dispatch every event at exactly this tick.  New
                # same-time events scheduled by handlers carry higher seqs,
                # so they surface at the heap top in exact FIFO order;
                # wheeled events can never land at the current tick.
                while heap and heap[0][0] == t:
                    event = pop(heap)[2]
                    if event.cancelled:
                        self._heap_dead -= 1
                        continue
                    event.fired = True
                    event.fn(*event.args)
                    fired += 1
                    if max_events is not None and fired >= max_events:
                        raise SimulationError(
                            f"event budget exhausted: {fired} events fired "
                            f"(possible scheduling loop)"
                        )
                    if self._stopped:
                        break
        finally:
            self._running = False
        if until is not None and self._now < until:
            self._now = until
        return fired

    def run_for(self, duration: float, max_events: Optional[int] = None) -> int:
        """Run for ``duration`` simulated seconds from the current time."""
        return self.run(until=self._now + duration, max_events=max_events)

    def pending_count(self) -> int:
        """Number of pending (non-cancelled) events in the queue."""
        return (len(self._heap) - self._heap_dead
                + self._wheel_count - self._wheel_dead)

    def queue_depth(self) -> int:
        """Total internal entries (live + tombstones) across the heap and
        the timer wheel -- what the O(live events) regression test bounds."""
        return len(self._heap) + self._wheel_count
