"""tcpdump-like packet tracing.

Figure 12(b) of the paper is a tcpdump captured at a backend server during a
YODA instance failure.  :class:`PacketTrace` reproduces that: any host (or
the network fabric itself) can attach one and every packet it sees is
recorded with its simulated timestamp and a structured summary.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Any, Callable, Iterable, List, Optional


@dataclass(frozen=True, slots=True)
class TraceRecord:
    """One captured packet."""

    time: float
    point: str  # capture point, e.g. "server-3" or "wire"
    direction: str  # "rx" or "tx"
    summary: str  # human-readable one-liner, tcpdump style
    src: str
    dst: str
    flags: str
    seq: int
    ack: int
    payload_len: int
    dropped: bool = False

    def __str__(self) -> str:
        drop = " DROPPED" if self.dropped else ""
        return (
            f"{self.time:10.6f} {self.point} {self.direction} "
            f"{self.src} > {self.dst}: {self.flags} seq={self.seq} "
            f"ack={self.ack} len={self.payload_len}{drop}"
        )


def canonical_trace_line(rec: TraceRecord) -> str:
    """One record as a stable line; schedule digests are folded over these.

    This is the same rendering the golden-trace suite pins, so a shard
    worker's running digest and a golden file's digest are directly
    comparable.
    """
    return (
        f"{rec.time:.9f} {rec.point} {rec.direction} "
        f"{rec.src}>{rec.dst} {rec.flags} seq={rec.seq} ack={rec.ack} "
        f"len={rec.payload_len}{' DROPPED' if rec.dropped else ''}"
    )


class DigestTrace:
    """A trace tap that keeps no records -- only a running SHA-256.

    Shard workers attach one of these so a multi-hour, multi-million-packet
    run stays O(1) in memory while still producing a schedule digest the
    barrier coordinator can merge and compare across runs.
    """

    def __init__(self, name: str = "digest"):
        self.name = name
        self._sha = hashlib.sha256()
        self.count = 0

    def record(self, rec: TraceRecord) -> None:
        self._sha.update(canonical_trace_line(rec).encode())
        self.count += 1

    def digest(self) -> str:
        return self._sha.hexdigest()


class PacketTrace:
    """Accumulates :class:`TraceRecord` entries, with simple filtering."""

    def __init__(self, name: str = "trace"):
        self.name = name
        self.records: List[TraceRecord] = []
        self.enabled = True

    def record(self, rec: TraceRecord) -> None:
        if self.enabled:
            self.records.append(rec)

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    def filter(
        self,
        predicate: Optional[Callable[[TraceRecord], bool]] = None,
        *,
        point: Optional[str] = None,
        direction: Optional[str] = None,
        flow_between: Optional[tuple] = None,
    ) -> List[TraceRecord]:
        """Select records.

        Args:
            predicate: arbitrary filter applied last.
            point: only records captured at this point.
            direction: "rx" or "tx".
            flow_between: (addr_a, addr_b) strings -- keep packets whose
                src/dst endpoints are exactly this unordered pair (prefix
                match, so "10.0.0.1" matches "10.0.0.1:80").
        """
        out: Iterable[TraceRecord] = self.records
        if point is not None:
            out = (r for r in out if r.point == point)
        if direction is not None:
            out = (r for r in out if r.direction == direction)
        if flow_between is not None:
            a, b = flow_between

            def _matches(r: TraceRecord) -> bool:
                fwd = r.src.startswith(a) and r.dst.startswith(b)
                rev = r.src.startswith(b) and r.dst.startswith(a)
                return fwd or rev

            out = (r for r in out if _matches(r))
        result = list(out)
        if predicate is not None:
            result = [r for r in result if predicate(r)]
        return result

    def dump(self) -> str:
        """The whole trace as tcpdump-style text."""
        return "\n".join(str(r) for r in self.records)

    def retransmissions(self) -> List[TraceRecord]:
        """Records whose (src, dst, seq, payload_len) was already seen --
        i.e. retransmitted data segments."""
        seen = set()
        out = []
        for r in self.records:
            if r.payload_len == 0 and "S" not in r.flags:
                continue
            key = (r.src, r.dst, r.seq, r.payload_len, r.flags)
            if key in seen:
                out.append(r)
            seen.add(key)
        return out
