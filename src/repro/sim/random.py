"""Seeded randomness for the simulator.

Every stochastic choice in the library (link jitter, workload arrivals,
trace generation, randomized rounding in the assignment solver) draws from a
:class:`SeededRng`, so a run is fully reproducible from its seed.  Components
fork child generators by name so adding randomness to one subsystem does not
perturb another.
"""

from __future__ import annotations

import hashlib
import math
import random
from typing import List, Optional, Sequence, TypeVar

T = TypeVar("T")


class SeededRng:
    """A named, forkable wrapper around :class:`random.Random`.

    >>> rng = SeededRng(7)
    >>> a = rng.fork("clients").uniform(0, 1)
    >>> b = SeededRng(7).fork("clients").uniform(0, 1)
    >>> a == b
    True
    """

    def __init__(self, seed: int, name: str = "root"):
        self.seed = int(seed)
        self.name = name
        self._random = random.Random(self._derive(seed, name))

    @staticmethod
    def _derive(seed: int, name: str) -> int:
        digest = hashlib.sha256(f"{seed}:{name}".encode()).digest()
        return int.from_bytes(digest[:8], "big")

    def fork(self, name: str) -> "SeededRng":
        """Create an independent child generator identified by ``name``."""
        return SeededRng(self.seed, f"{self.name}/{name}")

    # -- thin delegation -------------------------------------------------
    def random(self) -> float:
        return self._random.random()

    def uniform(self, a: float, b: float) -> float:
        return self._random.uniform(a, b)

    def randint(self, a: int, b: int) -> int:
        return self._random.randint(a, b)

    def choice(self, seq: Sequence[T]) -> T:
        return self._random.choice(seq)

    def sample(self, seq: Sequence[T], k: int) -> List[T]:
        return self._random.sample(seq, k)

    def shuffle(self, seq: list) -> None:
        self._random.shuffle(seq)

    def gauss(self, mu: float, sigma: float) -> float:
        return self._random.gauss(mu, sigma)

    def expovariate(self, rate: float) -> float:
        return self._random.expovariate(rate)

    def lognormal(self, mu: float, sigma: float) -> float:
        return self._random.lognormvariate(mu, sigma)

    def weighted_choice(self, items: Sequence[T], weights: Sequence[float]) -> T:
        """Pick one item with probability proportional to its weight."""
        return self._random.choices(list(items), weights=list(weights), k=1)[0]

    def pareto(self, alpha: float, xmin: float = 1.0) -> float:
        """Sample a Pareto-distributed value with minimum ``xmin``."""
        return xmin * (1.0 + self._random.paretovariate(alpha) - 1.0)

    def bounded_pareto(self, alpha: float, lo: float, hi: float) -> float:
        """Sample a Pareto value truncated to [lo, hi] via inverse CDF."""
        if not (0 < lo < hi):
            raise ValueError(f"invalid bounds lo={lo}, hi={hi}")
        u = self._random.random()
        la, ha = lo**alpha, hi**alpha
        return (-(u * ha - u * la - ha) / (ha * la)) ** (-1.0 / alpha)

    def zipf_weights(self, n: int, skew: float = 1.0) -> List[float]:
        """Normalized Zipf popularity weights for ranks 1..n."""
        raw = [1.0 / (rank**skew) for rank in range(1, n + 1)]
        total = math.fsum(raw)
        return [w / total for w in raw]

    def isn_for(self, key: str) -> int:
        """Deterministic 32-bit value derived from ``key`` (used for TCP
        initial sequence numbers that must be recomputable by any node)."""
        digest = hashlib.sha256(key.encode()).digest()
        return int.from_bytes(digest[:4], "big")


def stable_hash32(text: str, salt: str = "") -> int:
    """Process-independent 32-bit hash of ``text`` (unlike built-in hash()).

    Used wherever the paper requires every node to compute the *same* value
    from the same inputs: SYN-ACK sequence numbers (Section 4.1) and the
    L4 mux / Memcached consistent-hash rings.
    """
    digest = hashlib.sha256(f"{salt}:{text}".encode()).digest()
    return int.from_bytes(digest[:4], "big")


def stable_hash64(text: str, salt: str = "") -> int:
    """Process-independent 64-bit hash of ``text``."""
    digest = hashlib.sha256(f"{salt}:{text}".encode()).digest()
    return int.from_bytes(digest[:8], "big")
