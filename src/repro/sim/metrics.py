"""Metrics primitives used by every subsystem and experiment.

The experiments in the paper report medians, P90s, CDFs, utilizations and
time series; these classes collect exactly those without pulling in heavy
dependencies on hot paths.
"""

from __future__ import annotations

import bisect
import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str = ""):
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("Counter can only increase; use Gauge for ups and downs")
        self.value += amount

    def __repr__(self) -> str:
        return f"Counter({self.name!r}, {self.value})"


class Gauge:
    """A value that can go up and down (e.g. live connections)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str = "", initial: float = 0.0):
        self.name = name
        self.value = initial

    def set(self, value: float) -> None:
        self.value = value

    def add(self, delta: float) -> None:
        self.value += delta

    def __repr__(self) -> str:
        return f"Gauge({self.name!r}, {self.value})"


class Histogram:
    """Stores raw samples; supports exact percentiles and CDFs.

    Exact (not sketched) because experiment sample counts here are modest
    (10^4-10^6) and the paper reports exact medians/P90s.
    """

    def __init__(self, name: str = ""):
        self.name = name
        self._samples: List[float] = []
        self._sorted = True

    def observe(self, value: float) -> None:
        if self._samples and value < self._samples[-1]:
            self._sorted = False
        self._samples.append(value)

    def extend(self, values: Iterable[float]) -> None:
        for v in values:
            self.observe(v)

    def _ensure_sorted(self) -> None:
        if not self._sorted:
            self._samples.sort()
            self._sorted = True

    def __len__(self) -> int:
        return len(self._samples)

    @property
    def count(self) -> int:
        return len(self._samples)

    def percentile(self, p: float) -> float:
        """Exact percentile with linear interpolation; ``p`` in [0, 100]."""
        if not self._samples:
            raise ValueError(f"histogram {self.name!r} is empty")
        if not 0.0 <= p <= 100.0:
            raise ValueError(f"percentile {p} out of range [0, 100]")
        self._ensure_sorted()
        if len(self._samples) == 1:
            return self._samples[0]
        rank = (p / 100.0) * (len(self._samples) - 1)
        lo = int(math.floor(rank))
        hi = min(lo + 1, len(self._samples) - 1)
        frac = rank - lo
        return self._samples[lo] * (1 - frac) + self._samples[hi] * frac

    def median(self) -> float:
        return self.percentile(50.0)

    def p90(self) -> float:
        return self.percentile(90.0)

    def p99(self) -> float:
        return self.percentile(99.0)

    def mean(self) -> float:
        if not self._samples:
            raise ValueError(f"histogram {self.name!r} is empty")
        return math.fsum(self._samples) / len(self._samples)

    def min(self) -> float:
        self._ensure_sorted()
        return self._samples[0]

    def max(self) -> float:
        self._ensure_sorted()
        return self._samples[-1]

    def cdf(self, points: Optional[int] = None) -> List[Tuple[float, float]]:
        """Return (value, cumulative_fraction) pairs.

        Args:
            points: if given, downsample to roughly this many points
                (always keeping the first and last sample).
        """
        self._ensure_sorted()
        n = len(self._samples)
        if n == 0:
            return []
        step = max(1, n // points) if points else 1
        out = [
            (self._samples[i], (i + 1) / n)
            for i in range(0, n, step)
        ]
        if out[-1][0] != self._samples[-1]:
            out.append((self._samples[-1], 1.0))
        return out

    def fraction_above(self, threshold: float) -> float:
        """Fraction of samples strictly greater than ``threshold``."""
        if not self._samples:
            return 0.0
        self._ensure_sorted()
        idx = bisect.bisect_right(self._samples, threshold)
        return (len(self._samples) - idx) / len(self._samples)

    def samples(self) -> List[float]:
        """A sorted copy of the raw samples."""
        self._ensure_sorted()
        return list(self._samples)


class TimeSeries:
    """(time, value) samples, e.g. per-instance CPU utilization over time."""

    def __init__(self, name: str = ""):
        self.name = name
        self.times: List[float] = []
        self.values: List[float] = []

    def record(self, time: float, value: float) -> None:
        if self.times and time < self.times[-1]:
            raise ValueError("TimeSeries samples must be recorded in time order")
        self.times.append(time)
        self.values.append(value)

    def __len__(self) -> int:
        return len(self.times)

    def items(self) -> List[Tuple[float, float]]:
        return list(zip(self.times, self.values))

    def value_at(self, time: float) -> float:
        """Value of the most recent sample at or before ``time``."""
        if not self.times:
            raise ValueError(f"time series {self.name!r} is empty")
        idx = bisect.bisect_right(self.times, time) - 1
        if idx < 0:
            raise ValueError(f"no sample at or before t={time}")
        return self.values[idx]

    def window(self, start: float, end: float) -> "TimeSeries":
        """Samples with start <= time < end."""
        out = TimeSeries(self.name)
        for t, v in zip(self.times, self.values):
            if start <= t < end:
                out.record(t, v)
        return out

    def mean(self) -> float:
        if not self.values:
            raise ValueError(f"time series {self.name!r} is empty")
        return math.fsum(self.values) / len(self.values)

    def max(self) -> float:
        if not self.values:
            raise ValueError(f"time series {self.name!r} is empty")
        return max(self.values)


@dataclass
class MetricRegistry:
    """A namespace of metrics, one per component instance."""

    name: str = ""
    counters: Dict[str, Counter] = field(default_factory=dict)
    gauges: Dict[str, Gauge] = field(default_factory=dict)
    histograms: Dict[str, Histogram] = field(default_factory=dict)
    series: Dict[str, TimeSeries] = field(default_factory=dict)

    def counter(self, name: str) -> Counter:
        if name not in self.counters:
            self.counters[name] = Counter(f"{self.name}.{name}")
        return self.counters[name]

    def gauge(self, name: str) -> Gauge:
        if name not in self.gauges:
            self.gauges[name] = Gauge(f"{self.name}.{name}")
        return self.gauges[name]

    def histogram(self, name: str) -> Histogram:
        if name not in self.histograms:
            self.histograms[name] = Histogram(f"{self.name}.{name}")
        return self.histograms[name]

    def timeseries(self, name: str) -> TimeSeries:
        if name not in self.series:
            self.series[name] = TimeSeries(f"{self.name}.{name}")
        return self.series[name]
