"""Metrics primitives used by every subsystem and experiment.

The experiments in the paper report medians, P90s, CDFs, utilizations and
time series; these classes collect exactly those without pulling in heavy
dependencies on hot paths.

``Histogram`` is sketch-backed: every observation feeds a streaming
DDSketch-style quantile sketch (O(1) memory, guaranteed relative error),
and raw samples are additionally retained only up to ``max_samples``.
Below that cap, percentiles/CDFs are exact -- so existing experiments and
tests see bit-identical numbers.  Past the cap the raw samples are
discarded ("spilled") and quantile reads fall back to the sketch; the
exact-samples APIs (``samples``/``cdf``/``fraction_above``) then raise
rather than silently degrade.  Tests that need exactness at any size opt
in with ``exact=True``.
"""

from __future__ import annotations

import bisect
import math
import weakref
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.obs.sketch import QuantileSketch


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str = ""):
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("Counter can only increase; use Gauge for ups and downs")
        self.value += amount

    def __repr__(self) -> str:
        return f"Counter({self.name!r}, {self.value})"


class Gauge:
    """A value that can go up and down (e.g. live connections)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str = "", initial: float = 0.0):
        self.name = name
        self.value = initial

    def set(self, value: float) -> None:
        self.value = value

    def add(self, delta: float) -> None:
        self.value += delta

    def __repr__(self) -> str:
        return f"Gauge({self.name!r}, {self.value})"


# Raw samples retained before a (non-exact) histogram spills to its sketch.
# High enough that every paper experiment stays exact; low enough that a
# "millions of users" run is bounded.
DEFAULT_MAX_SAMPLES = 65_536


class Histogram:
    """Latency/value distribution: exact at small n, sketch-backed at scale.

    Args:
        name: metric name.
        exact: never spill -- keep every raw sample regardless of size
            (opt-in for tests that assert exact percentiles on big streams).
        max_samples: raw-sample retention cap before spilling.
    """

    __slots__ = (
        "name",
        "exact",
        "max_samples",
        "_samples",
        "_sorted",
        "_spilled",
        "_count",
        "_sum",
        "_min",
        "_max",
        "_sketch",
    )

    def __init__(self, name: str = "", exact: bool = False,
                 max_samples: int = DEFAULT_MAX_SAMPLES):
        self.name = name
        self.exact = exact
        self.max_samples = max_samples
        self._samples: List[float] = []
        self._sorted = True
        self._spilled = False
        self._count = 0
        self._sum = 0.0
        self._min = math.inf
        self._max = -math.inf
        self._sketch = QuantileSketch()

    def observe(self, value: float) -> None:
        self._count += 1
        self._sum += value
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value
        self._sketch.add(value)
        if self._spilled:
            return
        if self._samples and value < self._samples[-1]:
            self._sorted = False
        self._samples.append(value)
        if not self.exact and len(self._samples) > self.max_samples:
            self._samples = []
            self._sorted = True
            self._spilled = True

    def extend(self, values: Iterable[float]) -> None:
        for v in values:
            self.observe(v)

    def _ensure_sorted(self) -> None:
        if not self._sorted:
            self._samples.sort()
            self._sorted = True

    def _require_exact(self, what: str) -> None:
        if self._spilled:
            raise RuntimeError(
                f"histogram {self.name!r} spilled its raw samples after "
                f"{self.max_samples}; {what} needs them -- construct with "
                f"exact=True (or a larger max_samples) to keep all samples"
            )

    @property
    def spilled(self) -> bool:
        """True once raw samples were discarded and reads are sketch-backed."""
        return self._spilled

    @property
    def sketch(self) -> QuantileSketch:
        return self._sketch

    def __len__(self) -> int:
        return self._count

    @property
    def count(self) -> int:
        return self._count

    def percentile(self, p: float) -> float:
        """Percentile with ``p`` in [0, 100]: exact (linear interpolation)
        until the histogram spills, sketch-estimated after."""
        if not self._count:
            raise ValueError(f"histogram {self.name!r} is empty")
        if not 0.0 <= p <= 100.0:
            raise ValueError(f"percentile {p} out of range [0, 100]")
        if self._spilled:
            return self._sketch.percentile(p)
        self._ensure_sorted()
        if len(self._samples) == 1:
            return self._samples[0]
        rank = (p / 100.0) * (len(self._samples) - 1)
        lo = int(math.floor(rank))
        hi = min(lo + 1, len(self._samples) - 1)
        frac = rank - lo
        return self._samples[lo] * (1 - frac) + self._samples[hi] * frac

    def quantile(self, q: float) -> float:
        """Quantile with ``q`` in [0, 1] (same backing as ``percentile``)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile {q} out of range [0, 1]")
        return self.percentile(q * 100.0)

    def median(self) -> float:
        return self.percentile(50.0)

    def p90(self) -> float:
        return self.percentile(90.0)

    def p99(self) -> float:
        return self.percentile(99.0)

    def mean(self) -> float:
        if not self._count:
            raise ValueError(f"histogram {self.name!r} is empty")
        if not self._spilled:
            return math.fsum(self._samples) / len(self._samples)
        return self._sum / self._count

    def min(self) -> float:
        if not self._count:
            raise ValueError(f"histogram {self.name!r} is empty")
        return self._min

    def max(self) -> float:
        if not self._count:
            raise ValueError(f"histogram {self.name!r} is empty")
        return self._max

    def cdf(self, points: Optional[int] = None) -> List[Tuple[float, float]]:
        """Return (value, cumulative_fraction) pairs.

        Args:
            points: if given, downsample to roughly this many points
                (always keeping the first and last sample).
        """
        if self._count == 0:
            return []
        self._require_exact("cdf()")
        self._ensure_sorted()
        n = len(self._samples)
        step = max(1, n // points) if points else 1
        out = [
            (self._samples[i], (i + 1) / n)
            for i in range(0, n, step)
        ]
        if out[-1][0] != self._samples[-1]:
            out.append((self._samples[-1], 1.0))
        return out

    def fraction_above(self, threshold: float) -> float:
        """Fraction of samples strictly greater than ``threshold``."""
        if not self._count:
            return 0.0
        self._require_exact("fraction_above()")
        self._ensure_sorted()
        idx = bisect.bisect_right(self._samples, threshold)
        return (len(self._samples) - idx) / len(self._samples)

    def samples(self) -> List[float]:
        """A sorted copy of the raw samples."""
        self._require_exact("samples()")
        self._ensure_sorted()
        return list(self._samples)


class TimeSeries:
    """(time, value) samples, e.g. per-instance CPU utilization over time."""

    def __init__(self, name: str = ""):
        self.name = name
        self.times: List[float] = []
        self.values: List[float] = []

    def record(self, time: float, value: float) -> None:
        if self.times and time < self.times[-1]:
            raise ValueError("TimeSeries samples must be recorded in time order")
        self.times.append(time)
        self.values.append(value)

    def __len__(self) -> int:
        return len(self.times)

    def items(self) -> List[Tuple[float, float]]:
        return list(zip(self.times, self.values))

    def value_at(self, time: float) -> float:
        """Value of the most recent sample at or before ``time``."""
        if not self.times:
            raise ValueError(f"time series {self.name!r} is empty")
        idx = bisect.bisect_right(self.times, time) - 1
        if idx < 0:
            raise ValueError(f"no sample at or before t={time}")
        return self.values[idx]

    def window(self, start: float, end: float) -> "TimeSeries":
        """Samples with start <= time < end."""
        out = TimeSeries(self.name)
        for t, v in zip(self.times, self.values):
            if start <= t < end:
                out.record(t, v)
        return out

    def mean(self) -> float:
        if not self.values:
            raise ValueError(f"time series {self.name!r} is empty")
        return math.fsum(self.values) / len(self.values)

    def max(self) -> float:
        if not self.values:
            raise ValueError(f"time series {self.name!r} is empty")
        return max(self.values)


# Live registries, for the obs exporters/scraper: every MetricRegistry
# registers itself weakly, so "export all metrics in the process" needs no
# plumbing and dead testbeds disappear on their own.
_REGISTRIES: "weakref.WeakSet[MetricRegistry]" = weakref.WeakSet()


def all_registries() -> List["MetricRegistry"]:
    """Every live registry, name-sorted (creation order breaks ties)."""
    return sorted(_REGISTRIES, key=lambda r: r.name)


@dataclass(eq=False)
class MetricRegistry:
    """A namespace of metrics, one per component instance."""

    name: str = ""
    counters: Dict[str, Counter] = field(default_factory=dict)
    gauges: Dict[str, Gauge] = field(default_factory=dict)
    histograms: Dict[str, Histogram] = field(default_factory=dict)
    series: Dict[str, TimeSeries] = field(default_factory=dict)

    def __post_init__(self) -> None:
        _REGISTRIES.add(self)

    def counter(self, name: str) -> Counter:
        if name not in self.counters:
            self.counters[name] = Counter(f"{self.name}.{name}")
        return self.counters[name]

    def gauge(self, name: str) -> Gauge:
        if name not in self.gauges:
            self.gauges[name] = Gauge(f"{self.name}.{name}")
        return self.gauges[name]

    def histogram(self, name: str, exact: bool = False) -> Histogram:
        if name not in self.histograms:
            self.histograms[name] = Histogram(f"{self.name}.{name}", exact=exact)
        return self.histograms[name]

    def timeseries(self, name: str) -> TimeSeries:
        if name not in self.series:
            self.series[name] = TimeSeries(f"{self.name}.{name}")
        return self.series[name]
