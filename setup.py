"""Thin shim so `pip install -e .` works on environments without the
`wheel` package (PEP 660 editable installs need it; legacy develop does not).
All real metadata lives in pyproject.toml."""

from setuptools import setup

setup()
