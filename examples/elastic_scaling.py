#!/usr/bin/env python3
"""Elastic scale-out under a traffic surge (the Figure 13 scenario).

Starts 3 YODA instances plus 2 provisioned-but-idle spares, doubles the
offered load mid-run, and watches the controller's autoscaler pull spares
into service -- while every in-flight request completes.  This is the
capability the paper contrasts with self-managed HAProxy fleets, where
adding/removing instances breaks connections (Section 2.3, Problem 2).

Run:  python examples/elastic_scaling.py
"""

from repro.core.controller import AutoscaleConfig
from repro.core.instance import YodaCostModel
from repro.experiments.harness import Testbed, TestbedConfig


def main() -> None:
    scale = 25.0  # shrink request rates, grow per-packet CPU cost to match
    bed = Testbed(TestbedConfig(
        seed=11, lb="yoda", num_lb_instances=3, num_store_servers=2,
        num_backends=4, corpus="flat", flat_object_bytes=10_000,
        yoda_cost=YodaCostModel(
            packet_cpu_base=4.0e-6 * scale,
            packet_cpu_per_byte=1.5e-9 * scale,
        ),
    ))
    controller = bed.yoda.controller
    for _ in range(2):
        bed.yoda.new_spare_instance()
    controller.enable_autoscaling(AutoscaleConfig(
        high_watermark=0.70, target=0.55, check_interval=3.0,
    ))

    generator = bed.open_loop(rate=450.0)  # ~150 req/s per instance
    bed.loop.call_later(9.0, lambda: generator.set_rate(900.0))

    busy_marker = {}

    def report() -> None:
        live = [controller.instances[n] for n in controller.instances
                if controller.active.get(n) and not controller.instances[n].host.failed]
        utils = []
        for inst in live:
            busy = inst.cpu.busy_seconds
            utils.append((busy - busy_marker.get(inst.name, 0.0)) / 3.0)
            busy_marker[inst.name] = busy
        avg = sum(utils) / len(utils)
        print(f"t={bed.loop.now():5.1f}s  instances={len(live)}  "
              f"offered={generator.rate:6.0f} req/s  avg_cpu={avg:4.0%}")
        bed.loop.call_later(3.0, report)

    bed.loop.call_later(3.0, report)
    bed.run(27.0)
    generator.stop()
    bed.run(2.0)

    ok, failed = generator.ok_count(), generator.failure_count()
    print(f"\nrequests: {ok} ok, {failed} failed "
          f"(scale-out added {controller.metrics.counter('scaled_up').value} "
          f"instance(s) with zero broken flows)")
    assert failed == 0


if __name__ == "__main__":
    main()
