#!/usr/bin/env python3
"""Capacity planning with the VIP-assignment engine (Sections 4.4-4.5).

Generates a 24 h production-style traffic trace (100 VIPs, 50K+ rules),
then replays the controller's 10-minute re-assignment loop: solve the
Figure 7 problem under the migration limit (YODA-limit), track instance
counts against the all-to-all baseline, and report the cost picture that
Figure 15/16 summarize.

Run:  python examples/capacity_planning.py
"""

import statistics

from repro.core.assignment import AssignmentProblem, plan_update
from repro.core.assignment.all_to_all import min_instances_for_traffic
from repro.sim.random import SeededRng
from repro.workload.trace import generate_trace, uniform_instances

CAPACITY = 300.0  # traffic units per instance (T_y)
RULE_CAPACITY = 2_000  # R_y: the 5 ms latency point of Figure 6
POOL = 170


def main() -> None:
    trace = generate_trace(SeededRng(42))
    ratios = trace.max_to_avg_all()
    print(f"trace: {len(trace.vips)} VIPs, {trace.total_rules():,} rules, "
          f"max/avg traffic ratio mean={statistics.mean(ratios.values()):.1f}x "
          f"(this is the per-tenant saving vs peak-provisioned HAProxy)")

    pool = uniform_instances(POOL, CAPACITY, RULE_CAPACITY)
    old_assignment = None
    print(f"\n{'hour':>5} {'traffic':>9} {'all-to-all':>10} "
          f"{'yoda-limit':>10} {'migrated':>9} {'solve':>7}")
    peak_used = 0
    for interval in range(0, trace.intervals, 18):  # every 3 hours
        specs = trace.interval_vip_specs(interval, CAPACITY, max_replicas=12)
        traffic_now = trace.traffic_at(interval)
        conns = None
        if old_assignment:
            conns = {
                (vip, inst): traffic_now.get(vip, 0.0) / max(len(insts), 1)
                for vip, insts in old_assignment.items() for inst in insts
            }
        problem = AssignmentProblem(
            vips=specs, instances=pool,
            old_assignment=old_assignment, old_connections=conns,
            migration_limit=0.10 if old_assignment else None,
        )
        outcome = plan_update(problem, limit=True, use_lp=False)
        baseline = min_instances_for_traffic(problem)
        peak_used = max(peak_used, outcome.instances_used)
        print(f"{interval / 6:5.0f} {sum(traffic_now.values()):9.0f} "
              f"{baseline:10d} {outcome.instances_used:10d} "
              f"{outcome.migrated_fraction:8.1%} "
              f"{outcome.solve_seconds * 1e3:5.0f}ms")
        old_assignment = outcome.assignment.mapping

    print(f"\npeak YODA instances over the day: {peak_used} "
          f"(shared elastically across all {len(trace.vips)} tenants; "
          f"each tenant alone would provision for its own peak)")


if __name__ == "__main__":
    main()
