#!/usr/bin/env python3
"""Multi-tenant L7 policies: the full Table 3 rule repertoire.

Two tenants share one YODA deployment:

- ``shop.example`` (VIP 100.0.0.1) splits content by type -- images go to
  a media pool with a weighted split, everything else to app servers with
  least-loaded selection -- and pins logged-in sessions with a cookie
  table.
- ``api.example`` (VIP 100.0.0.2) runs primary-backup: all traffic to the
  primary until it fails, then the backup pool takes over -- demonstrated
  live by crashing the primary.

Run:  python examples/multi_tenant_policies.py
"""

from collections import Counter

from repro.core.policy import (
    VipPolicy, least_loaded, primary_backup, sticky_sessions, weighted_split,
)
from repro.core.service import YodaService, YodaServiceConfig
from repro.http.client import HttpFetcher
from repro.http.message import HttpRequest
from repro.http.server import BackendHttpServer, StaticSite
from repro.net.addresses import Endpoint
from repro.net.host import Host
from repro.net.links import FixedLatency
from repro.net.network import Network
from repro.sim.events import EventLoop
from repro.sim.random import SeededRng
from repro.tcp.endpoint import TcpStack

SHOP_VIP, API_VIP = "100.0.0.1", "100.0.0.2"


def build_backends(network, loop, names, site, prefix):
    out = {}
    for i, name in enumerate(names):
        host = network.attach(Host(name, [f"{prefix}.{i + 1}"], site="dc"))
        out[name] = BackendHttpServer(host, loop, site)
    return out


def main() -> None:
    loop = EventLoop()
    rng = SeededRng(7)
    network = Network(loop, rng)
    network.set_symmetric_latency("internet", "dc", FixedLatency(0.020))
    yoda = YodaService(loop, network, rng, YodaServiceConfig(
        num_instances=4, num_store_servers=2,
    ))

    site = StaticSite({
        "/banner.jpg": 30_000, "/app/cart": 2_000, "/app/profile": 2_000,
        "/v1/status": 500,
    })
    shop = build_backends(network, loop,
                          ["media-1", "media-2", "app-1", "app-2", "app-3"],
                          site, "10.3.0")
    api = build_backends(network, loop, ["api-primary", "api-backup"],
                         site, "10.3.1")

    # --- shop tenant: content switching + sticky sessions ---------------
    shop_policy = VipPolicy(
        vip=SHOP_VIP,
        backends={n: Endpoint(b.ip, 80) for n, b in shop.items()},
        rules=[
            # images: 2:1 weighted split across the media pool (Table 3 #1)
            weighted_split("images", "*.jpg",
                           {"media-1": 2.0, "media-2": 1.0}, priority=3),
            # logged-in sessions stick to one app server (Table 3 #4)
            sticky_sessions("sessions", "sid",
                            ["app-1", "app-2", "app-3"], priority=2),
            # default: least-loaded app server
            least_loaded("default", "*", ["app-1", "app-2", "app-3"],
                         priority=0),
        ],
    )
    yoda.add_service(shop_policy, shop)

    # --- api tenant: primary-backup (Table 3 #2-3) ----------------------
    api_policy = VipPolicy(
        vip=API_VIP,
        backends={n: Endpoint(b.ip, 80) for n, b in api.items()},
        rules=primary_backup("api", "*", {"api-primary": 1.0},
                             {"api-backup": 1.0}),
    )
    yoda.add_service(api_policy, api)
    yoda.settle(1.0)

    client_host = network.attach(Host("client", ["172.16.0.1"], site="internet"))
    stack = TcpStack(client_host, loop)

    def get(vip, path, cookie=None, n=1):
        """Issue n GETs; return Counter of backend names that answered."""
        served = Counter()

        def one(i):
            headers = {"Cookie": cookie} if cookie else {}
            request = HttpRequest("GET", path, host=vip, headers=headers)
            fetcher = HttpFetcher(
                stack, loop, Endpoint(vip, 80), request,
                lambda r: served.update(
                    [r.response.headers.get("X-Backend") if r.ok else "FAIL"]),
            )
            fetcher.start()

        for i in range(n):
            loop.call_later(i * 0.01, one, i)
        loop.run_for(n * 0.01 + 3.0)
        return served

    print("== shop.example: weighted image split (expect ~2:1) ==")
    print(dict(get(SHOP_VIP, "/banner.jpg", n=60)))

    print("\n== shop.example: sticky sessions (same cookie, same server) ==")
    for user in ("alice", "bob", "carol"):
        servers = get(SHOP_VIP, "/app/cart", cookie=f"sid={user}", n=5)
        assert len(servers) == 1, servers
        print(f"  sid={user}: always {next(iter(servers))}")

    print("\n== api.example: primary-backup ==")
    print("  before failure:", dict(get(API_VIP, "/v1/status", n=10)))
    api["api-primary"].fail()
    loop.run_for(1.0)  # monitor detects within 600 ms
    print("  primary crashed; after failover:",
          dict(get(API_VIP, "/v1/status", n=10)))


if __name__ == "__main__":
    main()
