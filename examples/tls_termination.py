#!/usr/bin/env python3
"""SSL termination that survives a crash mid-certificate (Section 5.2).

YODA instances hold the tenant's certificate, serve the TLS handshake,
and decrypt request headers to run rule matching.  The paper's failure
story: if the serving instance dies *while the certificate is still in
flight*, "another YODA instance resends the entire certificate (TCP
buffer at the client will remove duplicate packets)".

This example does exactly that, then prints a deployment snapshot.

Run:  python examples/tls_termination.py
"""

from repro.core.inspect import snapshot
from repro.core.policy import VipPolicy, weighted_split
from repro.core.service import YodaService, YodaServiceConfig
from repro.http.client import HttpsFetcher
from repro.http.message import HttpRequest
from repro.http.server import BackendHttpServer, StaticSite
from repro.http.tls import Certificate
from repro.net.addresses import Endpoint
from repro.net.host import Host
from repro.net.links import FixedLatency
from repro.net.network import Network
from repro.sim.events import EventLoop
from repro.sim.random import SeededRng
from repro.tcp.endpoint import TcpStack

VIP = "100.0.0.1"


def main() -> None:
    loop = EventLoop()
    rng = SeededRng(55)
    network = Network(loop, rng)
    network.set_symmetric_latency("internet", "dc", FixedLatency(0.030))
    yoda = YodaService(loop, network, rng,
                       YodaServiceConfig(num_instances=3, num_store_servers=2))

    cert = Certificate("shop.example", size=3_000)
    site = StaticSite({"/checkout": 60_000})
    backends = {}
    for i in range(2):
        host = network.attach(Host(f"srv-{i}", [f"10.3.0.{i + 1}"], site="dc"))
        backends[f"srv-{i}"] = BackendHttpServer(
            host, loop, site, tls_certificate=cert
        )
    policy = VipPolicy(
        vip=VIP,
        backends={n: Endpoint(b.ip, 80) for n, b in backends.items()},
        rules=[weighted_split("all", "*", {n: 1.0 for n in backends})],
        certificate=cert,
    )
    yoda.add_service(policy, backends)
    loop.run_for(1.0)

    client_host = network.attach(Host("client", ["172.16.0.1"], site="internet"))
    stack = TcpStack(client_host, loop)
    results = []
    HttpsFetcher(
        stack, loop, Endpoint(VIP, 80),
        HttpRequest("GET", "/checkout", host="shop.example"),
        results.append, sni="shop.example",
    ).start()

    def kill_mid_certificate() -> None:
        for instance in yoda.instances:
            for flow in instance.flows.values():
                if flow.tls_hello_done and flow.resp_acked < len(flow.resp_out):
                    print(f"t={loop.now():.3f}s  KILLING {instance.name} "
                          f"(certificate {flow.resp_acked}/{len(flow.resp_out)} "
                          f"bytes acknowledged)")
                    instance.fail()
                    return
        if loop.now() < 1.4:
            loop.call_later(0.001, kill_mid_certificate)

    loop.call_at(1.05, kill_mid_certificate)
    loop.run_for(30.0)

    result = results[0]
    print(f"HTTPS fetch: ok={result.ok}, "
          f"bytes={len(result.response.body):,}, "
          f"latency={result.latency:.2f}s, retries={result.retries_used}")
    print()
    print(snapshot(yoda).render())
    assert result.ok and result.retries_used == 0


if __name__ == "__main__":
    main()
