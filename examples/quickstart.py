#!/usr/bin/env python3
"""Quickstart: a YODA deployment that survives killing the LB mid-download.

Builds the whole stack in ~40 lines -- simulated network, L4 LB, four
YODA instances, TCPStore, three web backends -- then:

1. loads a page through the VIP,
2. starts a large download and crashes the YODA instance carrying it,
3. shows the flow migrating to a surviving instance via TCPStore,
   completing with no client-visible error.

Run:  python examples/quickstart.py
"""

from repro.core.policy import VipPolicy, weighted_split
from repro.core.service import YodaService, YodaServiceConfig
from repro.http.client import BrowserClient
from repro.http.server import BackendHttpServer, StaticSite
from repro.net.addresses import Endpoint
from repro.net.host import Host
from repro.net.links import FixedLatency
from repro.net.network import Network
from repro.sim.events import EventLoop
from repro.sim.random import SeededRng
from repro.tcp.endpoint import TcpStack

VIP = "100.0.0.1"


def main() -> None:
    # --- substrate: event loop + network with a 30 ms client-DC path ----
    loop = EventLoop()
    rng = SeededRng(2016)
    network = Network(loop, rng)
    network.set_symmetric_latency("internet", "dc", FixedLatency(0.030))

    # --- the YODA service: L4 LB + instances + TCPStore + controller ----
    yoda = YodaService(loop, network, rng, YodaServiceConfig(
        num_instances=4, num_store_servers=3,
    ))

    # --- three backends serving a tiny website --------------------------
    site = StaticSite({
        "/index.html": b"<html><img src='/logo.jpg'></html>",
        "/logo.jpg": 46_000,  # synthesized body of exactly this size
        "/dataset.bin": 2_000_000,
    })
    backends = {}
    for i in range(3):
        host = network.attach(Host(f"srv-{i}", [f"10.3.0.{i + 1}"], site="dc"))
        backends[f"srv-{i}"] = BackendHttpServer(host, loop, site)

    # --- onboard the tenant: one VIP, equal split across backends -------
    policy = VipPolicy(
        vip=VIP,
        backends={name: Endpoint(b.ip, 80) for name, b in backends.items()},
        rules=[weighted_split("even", "*", {name: 1.0 for name in backends})],
    )
    yoda.add_service(policy, backends)
    yoda.settle(1.0)  # let mappings and health checks converge

    # --- a browser on the far side of the Internet ----------------------
    client_host = network.attach(Host("laptop", ["172.16.0.1"], site="internet"))
    browser = BrowserClient(TcpStack(client_host, loop), loop, Endpoint(VIP, 80))

    # 1) ordinary page load through the VIP
    pages = []
    browser.load_page("/index.html", ["/logo.jpg"], pages.append)
    loop.run_for(5.0)
    page = pages[0]
    print(f"page load: {page.load_time * 1e3:.0f} ms, "
          f"objects={len(page.object_results)}, broken={page.broken}")

    # 2) large download; kill the serving instance mid-transfer
    downloads = []
    browser.fetch("/dataset.bin", downloads.append)

    def kill_serving_instance() -> None:
        for instance in yoda.instances:
            if instance.flows:
                print(f"t={loop.now():.2f}s  KILLING {instance.name} "
                      f"(carrying {len(instance.flows)} flow(s), "
                      f"local state wiped)")
                instance.fail()
                return

    loop.call_later(0.3, kill_serving_instance)
    loop.run_for(60.0)

    # 3) the flow migrated through TCPStore: no error, full payload
    result = downloads[0]
    recovered_by = [
        i.name for i in yoda.instances
        if i.metrics.counters.get("flows_recovered")
        and i.metrics.counters["flows_recovered"].value
    ]
    print(f"download: ok={result.ok}, bytes={len(result.response.body):,}, "
          f"latency={result.latency:.2f}s (includes the failover pause)")
    print(f"flow recovered from TCPStore by: {', '.join(recovered_by)}")
    print(f"client HTTP retries needed: {result.retries_used}")
    assert result.ok and not result.retries_used


if __name__ == "__main__":
    main()
